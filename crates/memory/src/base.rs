//! Base objects and the shared memory that holds them.

use std::fmt;
use std::hash::Hash;

use slx_engine::{decode_slice_delta, encode_slice_delta, DeltaCodec, DeltaCtx, StateCodec};

/// A word storable in a base object.
///
/// The paper's base objects hold arbitrary atomic state; making the word
/// type a parameter lets the compare-and-swap object of Algorithm I(1,2)
/// atomically hold a `(version, value-vector)` pair exactly as written,
/// while consensus implementations use plain integers. The `Eq + Hash`
/// bounds are what the exhaustive explorer needs to identify configurations
/// exactly (no lossy fingerprints).
pub trait Word: Clone + Eq + Hash + fmt::Debug {}

impl<T: Clone + Eq + Hash + fmt::Debug> Word for T {}

/// Index of a base object within a [`Memory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(usize);

impl ObjId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

impl StateCodec for ObjId {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(ObjId(usize::decode(input)?))
    }
}

/// Encodes a slice of object ids compactly: layouts allocate registers in
/// consecutive runs, so most slices collapse to `(tag, first, len)`
/// instead of one varint per id — a measurable win on the disk-backed
/// frontier, which round-trips every spilled configuration's register
/// arrays. Non-consecutive slices fall back to the plain list encoding.
/// Decode with [`decode_objid_run`].
pub fn encode_objid_run(ids: &[ObjId], out: &mut Vec<u8>) {
    let consecutive = ids.windows(2).all(|w| w[1].0 == w[0].0.wrapping_add(1));
    if consecutive && !ids.is_empty() {
        out.push(1);
        ids[0].0.encode(out);
        ids.len().encode(out);
    } else {
        out.push(0);
        ids.len().encode(out);
        for id in ids {
            id.encode(out);
        }
    }
}

/// Largest run length [`decode_objid_run`] will materialize: far above
/// any real memory's object count, low enough that a corrupt length
/// prefix fails with `None` instead of an unbounded allocation (the
/// run encoding is three varints regardless of `len`, so the usual
/// cap-by-input-length defense cannot apply).
const MAX_OBJID_RUN: usize = 1 << 20;

/// Decoding counterpart of [`encode_objid_run`].
pub fn decode_objid_run(input: &mut &[u8]) -> Option<Vec<ObjId>> {
    match u8::decode(input)? {
        1 => {
            let first = usize::decode(input)?;
            let len = usize::decode(input)?;
            // Reject absurd lengths and runs that would wrap (encode
            // never produces either) so ids stay unique and allocation
            // stays bounded on malformed input.
            if len > MAX_OBJID_RUN {
                return None;
            }
            first.checked_add(len)?;
            Some((first..first + len).map(ObjId).collect())
        }
        0 => {
            let len = usize::decode(input)?;
            let mut ids = Vec::with_capacity(len.min(input.len()));
            for _ in 0..len {
                ids.push(ObjId::decode(input)?);
            }
            Some(ids)
        }
        _ => None,
    }
}

/// One base object: an atomic hardware-like primitive object.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BaseObject<W> {
    /// Read/write register.
    Register(W),
    /// Compare-and-swap object (also readable).
    Cas(W),
    /// Test-and-set bit.
    Tas(bool),
    /// Fetch-and-add counter.
    Counter(i64),
    /// Atomic snapshot object: per-process update, atomic scan.
    Snapshot(Vec<W>),
}

impl<W: StateCodec> StateCodec for BaseObject<W> {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BaseObject::Register(w) => {
                out.push(0);
                w.encode(out);
            }
            BaseObject::Cas(w) => {
                out.push(1);
                w.encode(out);
            }
            BaseObject::Tas(b) => {
                out.push(2);
                b.encode(out);
            }
            BaseObject::Counter(c) => {
                out.push(3);
                c.encode(out);
            }
            BaseObject::Snapshot(v) => {
                out.push(4);
                v.encode(out);
            }
        }
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(input)? {
            0 => BaseObject::Register(W::decode(input)?),
            1 => BaseObject::Cas(W::decode(input)?),
            2 => BaseObject::Tas(bool::decode(input)?),
            3 => BaseObject::Counter(i64::decode(input)?),
            4 => BaseObject::Snapshot(Vec::decode(input)?),
            _ => return None,
        })
    }
}

/// An atomic primitive applied to a base object.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Primitive<W> {
    /// Read a register or CAS object.
    Read(ObjId),
    /// Write a register.
    Write(ObjId, W),
    /// Compare-and-swap: replace `expected` with `new`, reporting success.
    Cas {
        /// Target object.
        obj: ObjId,
        /// Value the object must hold.
        expected: W,
        /// Replacement value.
        new: W,
    },
    /// Test-and-set: set the bit, returning its previous value.
    Tas(ObjId),
    /// Reset a test-and-set bit to `false` (used by lock release).
    TasReset(ObjId),
    /// Fetch-and-add on a counter.
    FetchAdd(ObjId, i64),
    /// Update component `index` of a snapshot object.
    SnapUpdate {
        /// Target snapshot object.
        obj: ObjId,
        /// Component to update (usually the caller's process index).
        index: usize,
        /// New component value.
        val: W,
    },
    /// Atomically scan a snapshot object.
    SnapScan(ObjId),
}

/// Result of applying a [`Primitive`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PrimOutcome<W> {
    /// A word read from a register or CAS object.
    Value(W),
    /// Success flag of CAS, or previous value of TAS.
    Flag(bool),
    /// Previous value of a fetch-and-add counter.
    Int(i64),
    /// Snapshot scan result.
    Snapshot(Vec<W>),
    /// Acknowledgement with no payload (writes, updates, resets).
    Ack,
}

impl<W> PrimOutcome<W> {
    /// Extracts a word, panicking with a clear message otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is not [`PrimOutcome::Value`]. Algorithms use
    /// this after primitives whose outcome shape is statically known.
    pub fn expect_value(self) -> W {
        match self {
            PrimOutcome::Value(w) => w,
            other => panic!(
                "expected Value outcome, got {other:?}",
                other = kind(&other)
            ),
        }
    }

    /// Extracts a flag.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is not [`PrimOutcome::Flag`].
    pub fn expect_flag(self) -> bool {
        match self {
            PrimOutcome::Flag(b) => b,
            other => panic!("expected Flag outcome, got {other:?}", other = kind(&other)),
        }
    }

    /// Extracts a snapshot vector.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is not [`PrimOutcome::Snapshot`].
    pub fn expect_snapshot(self) -> Vec<W> {
        match self {
            PrimOutcome::Snapshot(v) => v,
            other => panic!(
                "expected Snapshot outcome, got {other:?}",
                other = kind(&other)
            ),
        }
    }

    /// Extracts a counter value.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is not [`PrimOutcome::Int`].
    pub fn expect_int(self) -> i64 {
        match self {
            PrimOutcome::Int(i) => i,
            other => panic!("expected Int outcome, got {other:?}", other = kind(&other)),
        }
    }
}

fn kind<W>(o: &PrimOutcome<W>) -> &'static str {
    match o {
        PrimOutcome::Value(_) => "Value",
        PrimOutcome::Flag(_) => "Flag",
        PrimOutcome::Int(_) => "Int",
        PrimOutcome::Snapshot(_) => "Snapshot",
        PrimOutcome::Ack => "Ack",
    }
}

/// Error applying a primitive to memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// The object id does not exist.
    NoSuchObject(ObjId),
    /// The primitive does not apply to the object's kind (e.g. `Tas` on a
    /// register).
    KindMismatch {
        /// Target object.
        obj: ObjId,
        /// Primitive attempted.
        primitive: &'static str,
    },
    /// Snapshot component index out of range.
    BadSnapshotIndex {
        /// Target object.
        obj: ObjId,
        /// Requested component.
        index: usize,
        /// Number of components.
        len: usize,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::NoSuchObject(o) => write!(f, "no such base object {o}"),
            MemoryError::KindMismatch { obj, primitive } => {
                write!(f, "primitive {primitive} does not apply to {obj}")
            }
            MemoryError::BadSnapshotIndex { obj, index, len } => {
                write!(
                    f,
                    "snapshot index {index} out of range for {obj} (len {len})"
                )
            }
        }
    }
}

impl std::error::Error for MemoryError {}

/// The shared memory: an indexed pool of base objects.
///
/// All primitive applications are atomic (they are single Rust function
/// calls under a scheduler that interleaves only between them).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Memory<W> {
    objects: Vec<BaseObject<W>>,
    applied: u64,
}

impl<W: Word> Memory<W> {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory {
            objects: Vec::new(),
            applied: 0,
        }
    }

    /// Allocates a register initialized to `init`.
    pub fn alloc_register(&mut self, init: W) -> ObjId {
        self.push(BaseObject::Register(init))
    }

    /// Allocates a CAS object initialized to `init`.
    pub fn alloc_cas(&mut self, init: W) -> ObjId {
        self.push(BaseObject::Cas(init))
    }

    /// Allocates a test-and-set bit (initially unset).
    pub fn alloc_tas(&mut self) -> ObjId {
        self.push(BaseObject::Tas(false))
    }

    /// Allocates a fetch-and-add counter.
    pub fn alloc_counter(&mut self, init: i64) -> ObjId {
        self.push(BaseObject::Counter(init))
    }

    /// Allocates a snapshot object with `n` components all equal to `init`.
    pub fn alloc_snapshot(&mut self, n: usize, init: W) -> ObjId {
        self.push(BaseObject::Snapshot(vec![init; n]))
    }

    fn push(&mut self, o: BaseObject<W>) -> ObjId {
        self.objects.push(o);
        ObjId(self.objects.len() - 1)
    }

    /// Number of base objects allocated.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether no objects are allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total number of primitives applied since creation. The [`crate::System`]
    /// uses the delta across a process step to enforce the one-primitive-per-
    /// step atomicity granularity.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Read-only view of an object (for assertions in tests).
    pub fn object(&self, obj: ObjId) -> Option<&BaseObject<W>> {
        self.objects.get(obj.0)
    }

    /// Iterates over all allocated objects with their ids.
    pub fn iter_objects(&self) -> impl Iterator<Item = (ObjId, &BaseObject<W>)> {
        self.objects.iter().enumerate().map(|(i, o)| (ObjId(i), o))
    }

    /// A copy of the memory with every stored word transformed by `f`
    /// (snapshot components included; TAS bits and counters unchanged).
    ///
    /// Used to build *normalized* configurations for cycle detection: when
    /// an algorithm's behaviour is invariant under a uniform shift of
    /// version numbers or timestamps, shifting them to a canonical base
    /// makes genuinely-repeating configurations compare equal.
    pub fn map_words(&self, mut f: impl FnMut(&W) -> W) -> Memory<W> {
        Memory {
            objects: self
                .objects
                .iter()
                .map(|o| match o {
                    BaseObject::Register(w) => BaseObject::Register(f(w)),
                    BaseObject::Cas(w) => BaseObject::Cas(f(w)),
                    BaseObject::Tas(b) => BaseObject::Tas(*b),
                    BaseObject::Counter(c) => BaseObject::Counter(*c),
                    BaseObject::Snapshot(v) => BaseObject::Snapshot(v.iter().map(&mut f).collect()),
                })
                .collect(),
            applied: 0,
        }
    }

    /// A copy of the memory with every base object transformed by `f`,
    /// which receives the object's id alongside its contents. Like
    /// [`Memory::map_words`] this resets the applied-primitive counter:
    /// the result is a *derived* configuration for keying/canonicalizing,
    /// not a resumable one.
    ///
    /// This is the object-granular sibling of [`Memory::map_words`],
    /// needed by process-permutation symmetries: permuting processes
    /// moves per-process register *contents* between objects (commit-adopt
    /// column `i` to column `π(i)`, snapshot components likewise), which
    /// a word-wise map cannot express.
    pub fn map_objects(
        &self,
        mut f: impl FnMut(ObjId, &BaseObject<W>) -> BaseObject<W>,
    ) -> Memory<W> {
        Memory {
            objects: self
                .objects
                .iter()
                .enumerate()
                .map(|(i, o)| f(ObjId(i), o))
                .collect(),
            applied: 0,
        }
    }

    /// Applies an atomic primitive.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError`] if the object does not exist, the primitive
    /// does not match the object kind, or a snapshot index is out of range.
    pub fn apply(&mut self, p: Primitive<W>) -> Result<PrimOutcome<W>, MemoryError> {
        self.applied += 1;
        match p {
            Primitive::Read(obj) => match self.get(obj)? {
                BaseObject::Register(w) | BaseObject::Cas(w) => Ok(PrimOutcome::Value(w.clone())),
                BaseObject::Counter(c) => Ok(PrimOutcome::Int(*c)),
                BaseObject::Tas(b) => Ok(PrimOutcome::Flag(*b)),
                BaseObject::Snapshot(_) => Err(MemoryError::KindMismatch {
                    obj,
                    primitive: "Read",
                }),
            },
            Primitive::Write(obj, val) => match self.get_mut(obj)? {
                BaseObject::Register(w) => {
                    *w = val;
                    Ok(PrimOutcome::Ack)
                }
                _ => Err(MemoryError::KindMismatch {
                    obj,
                    primitive: "Write",
                }),
            },
            Primitive::Cas { obj, expected, new } => match self.get_mut(obj)? {
                BaseObject::Cas(w) => {
                    if *w == expected {
                        *w = new;
                        Ok(PrimOutcome::Flag(true))
                    } else {
                        Ok(PrimOutcome::Flag(false))
                    }
                }
                _ => Err(MemoryError::KindMismatch {
                    obj,
                    primitive: "Cas",
                }),
            },
            Primitive::Tas(obj) => match self.get_mut(obj)? {
                BaseObject::Tas(b) => {
                    let prev = *b;
                    *b = true;
                    Ok(PrimOutcome::Flag(prev))
                }
                _ => Err(MemoryError::KindMismatch {
                    obj,
                    primitive: "Tas",
                }),
            },
            Primitive::TasReset(obj) => match self.get_mut(obj)? {
                BaseObject::Tas(b) => {
                    *b = false;
                    Ok(PrimOutcome::Ack)
                }
                _ => Err(MemoryError::KindMismatch {
                    obj,
                    primitive: "TasReset",
                }),
            },
            Primitive::FetchAdd(obj, delta) => match self.get_mut(obj)? {
                BaseObject::Counter(c) => {
                    let prev = *c;
                    *c += delta;
                    Ok(PrimOutcome::Int(prev))
                }
                _ => Err(MemoryError::KindMismatch {
                    obj,
                    primitive: "FetchAdd",
                }),
            },
            Primitive::SnapUpdate { obj, index, val } => match self.get_mut(obj)? {
                BaseObject::Snapshot(v) => {
                    let len = v.len();
                    match v.get_mut(index) {
                        Some(slot) => {
                            *slot = val;
                            Ok(PrimOutcome::Ack)
                        }
                        None => Err(MemoryError::BadSnapshotIndex { obj, index, len }),
                    }
                }
                _ => Err(MemoryError::KindMismatch {
                    obj,
                    primitive: "SnapUpdate",
                }),
            },
            Primitive::SnapScan(obj) => match self.get(obj)? {
                BaseObject::Snapshot(v) => Ok(PrimOutcome::Snapshot(v.clone())),
                _ => Err(MemoryError::KindMismatch {
                    obj,
                    primitive: "SnapScan",
                }),
            },
        }
    }

    fn get(&self, obj: ObjId) -> Result<&BaseObject<W>, MemoryError> {
        self.objects
            .get(obj.0)
            .ok_or(MemoryError::NoSuchObject(obj))
    }

    fn get_mut(&mut self, obj: ObjId) -> Result<&mut BaseObject<W>, MemoryError> {
        self.objects
            .get_mut(obj.0)
            .ok_or(MemoryError::NoSuchObject(obj))
    }
}

impl<W: Word> Default for Memory<W> {
    fn default() -> Self {
        Memory::new()
    }
}

impl<W: StateCodec> StateCodec for Memory<W> {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.objects.encode(out);
        // `applied` participates in `Eq`/`Hash` (it is the step counter
        // behind the atomicity check), so it must round-trip too.
        self.applied.encode(out);
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Memory {
            objects: Vec::decode(input)?,
            applied: u64::decode(input)?,
        })
    }
}

// Object ids are one varint; a changed base object re-encodes whole (its
// payload is a word or a bit — a field bitmap would cost as much).
impl DeltaCodec for ObjId {}
impl<W: DeltaCodec> DeltaCodec for BaseObject<W> {}

impl<W: DeltaCodec + PartialEq + Clone> DeltaCodec for Memory<W> {
    fn encode_delta(&self, prev: Option<&Self>, out: &mut Vec<u8>) {
        let Some(prev) = prev else {
            return self.encode(out);
        };
        // One scheduled step mutates at most one base object, so sibling
        // memories differ in zero or one entry of the object pool.
        encode_slice_delta(&self.objects, &prev.objects, out);
        // `applied` drifts by a handful of steps between siblings; the
        // wrapping difference zigzags to one byte either direction.
        self.applied
            .wrapping_sub(prev.applied)
            .cast_signed()
            .encode(out);
    }

    fn decode_delta(prev: Option<&Self>, input: &mut &[u8], ctx: &mut DeltaCtx) -> Option<Self> {
        let Some(prev) = prev else {
            return Self::decode(input);
        };
        Some(Memory {
            objects: decode_slice_delta(&prev.objects, input, ctx)?,
            applied: prev
                .applied
                .wrapping_add(i64::decode(input)?.cast_unsigned()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_read_write() {
        let mut m: Memory<i64> = Memory::new();
        let r = m.alloc_register(5);
        assert_eq!(m.apply(Primitive::Read(r)).unwrap(), PrimOutcome::Value(5));
        m.apply(Primitive::Write(r, 9)).unwrap();
        assert_eq!(m.apply(Primitive::Read(r)).unwrap(), PrimOutcome::Value(9));
    }

    #[test]
    fn cas_semantics() {
        let mut m: Memory<i64> = Memory::new();
        let c = m.alloc_cas(0);
        assert_eq!(
            m.apply(Primitive::Cas {
                obj: c,
                expected: 0,
                new: 1
            })
            .unwrap(),
            PrimOutcome::Flag(true)
        );
        assert_eq!(
            m.apply(Primitive::Cas {
                obj: c,
                expected: 0,
                new: 2
            })
            .unwrap(),
            PrimOutcome::Flag(false)
        );
        assert_eq!(m.apply(Primitive::Read(c)).unwrap(), PrimOutcome::Value(1));
    }

    #[test]
    fn tas_sets_once() {
        let mut m: Memory<i64> = Memory::new();
        let t = m.alloc_tas();
        assert_eq!(
            m.apply(Primitive::Tas(t)).unwrap(),
            PrimOutcome::Flag(false)
        );
        assert_eq!(m.apply(Primitive::Tas(t)).unwrap(), PrimOutcome::Flag(true));
        m.apply(Primitive::TasReset(t)).unwrap();
        assert_eq!(
            m.apply(Primitive::Tas(t)).unwrap(),
            PrimOutcome::Flag(false)
        );
    }

    #[test]
    fn counter_fetch_add() {
        let mut m: Memory<i64> = Memory::new();
        let c = m.alloc_counter(10);
        assert_eq!(
            m.apply(Primitive::FetchAdd(c, 3)).unwrap(),
            PrimOutcome::Int(10)
        );
        assert_eq!(
            m.apply(Primitive::FetchAdd(c, -1)).unwrap(),
            PrimOutcome::Int(13)
        );
    }

    #[test]
    fn snapshot_update_scan() {
        let mut m: Memory<i64> = Memory::new();
        let s = m.alloc_snapshot(3, 0);
        m.apply(Primitive::SnapUpdate {
            obj: s,
            index: 1,
            val: 7,
        })
        .unwrap();
        assert_eq!(
            m.apply(Primitive::SnapScan(s)).unwrap(),
            PrimOutcome::Snapshot(vec![0, 7, 0])
        );
    }

    #[test]
    fn snapshot_bad_index() {
        let mut m: Memory<i64> = Memory::new();
        let s = m.alloc_snapshot(2, 0);
        let err = m
            .apply(Primitive::SnapUpdate {
                obj: s,
                index: 5,
                val: 1,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            MemoryError::BadSnapshotIndex { index: 5, .. }
        ));
    }

    #[test]
    fn kind_mismatch_errors() {
        let mut m: Memory<i64> = Memory::new();
        let r = m.alloc_register(0);
        assert!(m.apply(Primitive::Tas(r)).is_err());
        assert!(m
            .apply(Primitive::Cas {
                obj: r,
                expected: 0,
                new: 1
            })
            .is_err());
        let bogus = ObjId(99);
        assert_eq!(
            m.apply(Primitive::Read(bogus)).unwrap_err(),
            MemoryError::NoSuchObject(bogus)
        );
    }

    #[test]
    fn applied_counts_every_primitive() {
        let mut m: Memory<i64> = Memory::new();
        let r = m.alloc_register(0);
        assert_eq!(m.applied(), 0);
        let _ = m.apply(Primitive::Read(r));
        let _ = m.apply(Primitive::Read(ObjId(99)));
        assert_eq!(m.applied(), 2);
    }

    #[test]
    fn error_display() {
        let e = MemoryError::NoSuchObject(ObjId(3));
        assert_eq!(e.to_string(), "no such base object obj3");
    }

    #[test]
    fn outcome_extractors() {
        assert_eq!(PrimOutcome::<i64>::Value(4).expect_value(), 4);
        assert!(PrimOutcome::<i64>::Flag(true).expect_flag());
        assert_eq!(PrimOutcome::<i64>::Int(2).expect_int(), 2);
        assert_eq!(
            PrimOutcome::<i64>::Snapshot(vec![1]).expect_snapshot(),
            vec![1]
        );
    }

    #[test]
    #[should_panic(expected = "expected Value")]
    fn outcome_extractor_panics_on_mismatch() {
        let _ = PrimOutcome::<i64>::Ack.expect_value();
    }
}
