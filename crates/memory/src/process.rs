//! The process abstraction: algorithms as step machines.

use slx_history::{Operation, Response};

use crate::base::{Memory, Word};

/// What a single process step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEffect {
    /// The process performed internal computation and/or one atomic
    /// primitive, and has more steps to take.
    Ran,
    /// The step produced the response for the current invocation; the
    /// process is no longer pending.
    Responded(Response),
    /// The process had no enabled step (no pending invocation, or it is
    /// blocked by its own algorithm).
    Idle,
}

/// An algorithm `Ii` executed by process `pi` (Section 2).
///
/// A process is *sequential*: it receives an invocation via
/// [`Process::on_invoke`], then takes steps under scheduler control until a
/// step returns [`StepEffect::Responded`]. Each call to [`Process::step`]
/// must apply **at most one** atomic primitive to the shared memory; the
/// [`crate::System`] enforces this (that is the atomicity granularity of
/// the asynchronous model — interleavings happen between primitives, never
/// inside one).
///
/// Implementations must be deterministic given the invocation sequence and
/// primitive outcomes; the explorer relies on this to treat a configuration
/// repeat as a genuine cycle.
pub trait Process<W: Word> {
    /// Delivers an invocation. Called only when the process is not pending
    /// (input-enabledness is handled by the system, which rejects
    /// invocations to pending processes).
    fn on_invoke(&mut self, op: Operation);

    /// Whether the process has an enabled computation step.
    ///
    /// A process with no pending invocation normally has none; an
    /// implementation may also disable steps of a pending process (the
    /// paper's Theorem 4.9 constructions do exactly this), which makes
    /// executions in which that process stops *fair*.
    fn has_step(&self) -> bool;

    /// Performs one step: at most one primitive on `mem`, plus local
    /// computation. Returns what happened.
    fn step(&mut self, mem: &mut Memory<W>) -> StepEffect;

    /// Notifies the process that it crashed. After this, the system never
    /// calls [`Process::step`] again; the default does nothing.
    fn on_crash(&mut self) {}

    /// Whether [`Process::canonical_system_digest`] is a real
    /// orbit-collapsing canonicalizer rather than the exact-digest
    /// fallback. Exploration spaces forward this as their
    /// `StateSpace::has_symmetry_reduction` capability flag.
    fn has_symmetry_reduction() -> bool
    where
        Self: Sized,
    {
        false
    }

    /// A fingerprint of `sys` **canonicalized over its symmetry orbit**:
    /// configurations equivalent under a symmetry of the algorithm — a
    /// process permutation, a uniform round/version/timestamp shift —
    /// must digest equally, while inequivalent configurations keep
    /// distinct digests with the same 128-bit-collision confidence as
    /// [`crate::System::digest128`].
    ///
    /// Soundness contract: the verdicts the exploration spaces extract
    /// (safety violations, decidable values, progress witnesses) must be
    /// invariant under the symmetries this quotients by. The default is
    /// the exact configuration digest (identity group, no reduction);
    /// algorithms overriding it must also override
    /// [`Process::has_symmetry_reduction`].
    fn canonical_system_digest(sys: &crate::System<W, Self>) -> slx_engine::Digest
    where
        Self: Sized + std::hash::Hash,
    {
        sys.digest128()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A process that responds `Ok` after a fixed number of no-op steps.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Delay {
        remaining: usize,
        pending: bool,
    }

    impl Process<i64> for Delay {
        fn on_invoke(&mut self, _op: Operation) {
            self.pending = true;
            self.remaining = 2;
        }

        fn has_step(&self) -> bool {
            self.pending
        }

        fn step(&mut self, _mem: &mut Memory<i64>) -> StepEffect {
            if !self.pending {
                return StepEffect::Idle;
            }
            if self.remaining == 0 {
                self.pending = false;
                StepEffect::Responded(Response::Ok)
            } else {
                self.remaining -= 1;
                StepEffect::Ran
            }
        }
    }

    #[test]
    fn step_machine_contract() {
        let mut p = Delay {
            remaining: 0,
            pending: false,
        };
        let mut mem: Memory<i64> = Memory::new();
        assert!(!p.has_step());
        assert_eq!(p.step(&mut mem), StepEffect::Idle);
        p.on_invoke(Operation::TxStart);
        assert!(p.has_step());
        assert_eq!(p.step(&mut mem), StepEffect::Ran);
        assert_eq!(p.step(&mut mem), StepEffect::Ran);
        assert_eq!(p.step(&mut mem), StepEffect::Responded(Response::Ok));
        assert!(!p.has_step());
    }
}
