//! A register-only snapshot sub-algorithm (double collect).
//!
//! Algorithm I(1,2) of the paper uses an atomic snapshot object `R[1..n]`.
//! The simulator provides snapshots as a base object, which matches the
//! paper's treatment. This module additionally shows that the snapshot can
//! itself be implemented from registers alone: a *double collect* scan is
//! lock-free — it returns a consistent snapshot as soon as two consecutive
//! collects observe identical values — so using it instead of the base
//! object would not change any (l,k)-freedom classification with l = 1.
//!
//! The classic caveat applies: a repeated pair of collects is conclusive
//! only if writers never reuse values (otherwise an ABA between the
//! collects could go unnoticed). Callers must therefore write
//! version-tagged values; Algorithm I(1,2)'s timestamps satisfy this
//! naturally because each process's timestamps strictly increase.

use crate::base::{Memory, ObjId, PrimOutcome, Primitive, Word};

/// Result of one step of a double-collect scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DoubleCollectResult<W> {
    /// The scan needs more steps.
    InProgress,
    /// The scan finished with a consistent snapshot.
    Done(Vec<W>),
}

/// A resumable double-collect scan over `n` registers.
///
/// This is a *sub-machine*: a [`crate::Process`] embeds it and forwards one
/// step (one register read, hence one primitive) per scheduler turn. Wait-
/// freedom is not guaranteed — a concurrent writer can force arbitrarily
/// many re-collects — but if writers quiesce or values stabilize the scan
/// terminates, which is exactly the lock-freedom the paper's (1,k) results
/// need.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DoubleCollect<W> {
    regs: Vec<ObjId>,
    cursor: usize,
    current: Vec<W>,
    previous: Option<Vec<W>>,
    /// Total register reads performed (for step-complexity benches).
    reads: u64,
}

impl<W: Word> DoubleCollect<W> {
    /// Starts a scan over the registers `regs` (component `i` of the
    /// snapshot is register `regs[i]`).
    pub fn new(regs: Vec<ObjId>) -> Self {
        DoubleCollect {
            regs,
            cursor: 0,
            current: Vec::new(),
            previous: None,
            reads: 0,
        }
    }

    /// Number of register reads performed so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Performs one step: reads one register. Returns `Done` when two
    /// consecutive collects agree.
    ///
    /// # Panics
    ///
    /// Panics if a register id is invalid or not a register — programming
    /// errors in the embedding algorithm, not runtime conditions.
    pub fn step(&mut self, mem: &mut Memory<W>) -> DoubleCollectResult<W> {
        let obj = self.regs[self.cursor];
        let out = mem.apply(Primitive::Read(obj)).expect("snapshot register");
        let PrimOutcome::Value(v) = out else {
            panic!("snapshot component {obj} is not a register");
        };
        self.reads += 1;
        self.current.push(v);
        self.cursor += 1;
        if self.cursor < self.regs.len() {
            return DoubleCollectResult::InProgress;
        }
        // A collect just finished; compare with the previous one.
        let finished = std::mem::take(&mut self.current);
        self.cursor = 0;
        match self.previous.take() {
            Some(prev) if prev == finished => DoubleCollectResult::Done(finished),
            _ => {
                self.previous = Some(finished);
                DoubleCollectResult::InProgress
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_with_regs(vals: &[i64]) -> (Memory<i64>, Vec<ObjId>) {
        let mut mem = Memory::new();
        let regs = vals.iter().map(|&v| mem.alloc_register(v)).collect();
        (mem, regs)
    }

    #[test]
    fn quiescent_scan_takes_two_collects() {
        let (mut mem, regs) = mem_with_regs(&[1, 2, 3]);
        let mut dc = DoubleCollect::new(regs);
        let mut result = DoubleCollectResult::InProgress;
        for _ in 0..6 {
            result = dc.step(&mut mem);
        }
        assert_eq!(result, DoubleCollectResult::Done(vec![1, 2, 3]));
        assert_eq!(dc.reads(), 6);
    }

    #[test]
    fn interfering_write_forces_recollect() {
        let (mut mem, regs) = mem_with_regs(&[0, 0]);
        let mut dc = DoubleCollect::new(regs.clone());
        // First collect reads [0, 0].
        assert_eq!(dc.step(&mut mem), DoubleCollectResult::InProgress);
        assert_eq!(dc.step(&mut mem), DoubleCollectResult::InProgress);
        // A writer changes component 0 between the collects.
        mem.apply(Primitive::Write(regs[0], 9)).unwrap();
        // Second collect reads [9, 0] — mismatch, keep going.
        assert_eq!(dc.step(&mut mem), DoubleCollectResult::InProgress);
        assert_eq!(dc.step(&mut mem), DoubleCollectResult::InProgress);
        // Third collect reads [9, 0] again — matches the second, done.
        assert_eq!(dc.step(&mut mem), DoubleCollectResult::InProgress);
        assert_eq!(dc.step(&mut mem), DoubleCollectResult::Done(vec![9, 0]));
    }

    #[test]
    fn snapshot_is_a_moment_in_time() {
        // With distinct values everywhere, a Done result must equal the
        // register contents at the instant of its final read.
        let (mut mem, regs) = mem_with_regs(&[10, 20]);
        let mut dc = DoubleCollect::new(regs);
        loop {
            if let DoubleCollectResult::Done(snap) = dc.step(&mut mem) {
                assert_eq!(snap, vec![10, 20]);
                break;
            }
        }
    }
}
