//! The system: processes + memory + history, driven by a scheduler.

use std::fmt;

use slx_engine::{DeltaCodec, DeltaCtx, StateCodec};
use slx_history::{Action, History, Operation, ProcessId, Response};

use crate::base::{Memory, Word};
use crate::process::{Process, StepEffect};
use crate::sched::{Decision, Scheduler};

/// One entry of the execution log.
///
/// Where the [`History`] records only external actions (invocations,
/// responses, crashes), the execution log additionally records which process
/// took each computation step. Liveness properties of Section 5 quantify
/// over *steps* ("at most k processes take infinitely many steps"), so they
/// are evaluated on this log, not on the history alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// An invocation was delivered to a process.
    Invoked(ProcessId, Operation),
    /// A process produced a response.
    Responded(ProcessId, Response),
    /// A process crashed.
    Crashed(ProcessId),
    /// A process took one computation step (possibly the one that produced
    /// a response; in that case both events are logged, step first).
    Stepped(ProcessId),
}

impl StateCodec for Event {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Event::Invoked(p, op) => {
                out.push(0);
                p.encode(out);
                op.encode(out);
            }
            Event::Responded(p, resp) => {
                out.push(1);
                p.encode(out);
                resp.encode(out);
            }
            Event::Crashed(p) => {
                out.push(2);
                p.encode(out);
            }
            Event::Stepped(p) => {
                out.push(3);
                p.encode(out);
            }
        }
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(input)? {
            0 => Event::Invoked(ProcessId::decode(input)?, Operation::decode(input)?),
            1 => Event::Responded(ProcessId::decode(input)?, Response::decode(input)?),
            2 => Event::Crashed(ProcessId::decode(input)?),
            3 => Event::Stepped(ProcessId::decode(input)?),
            _ => return None,
        })
    }
}

/// Errors from driving a [`System`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// Invocation delivered to a process that is already pending
    /// (well-formedness would be violated).
    AlreadyPending(ProcessId),
    /// Action addressed to a crashed process.
    Crashed(ProcessId),
    /// Process index out of range.
    NoSuchProcess(ProcessId),
    /// A process step applied more than one atomic primitive, violating the
    /// atomicity granularity of the model.
    AtomicityViolation {
        /// The offending process.
        proc: ProcessId,
        /// Number of primitives applied in the step.
        applied: u64,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::AlreadyPending(p) => write!(f, "process {p} is already pending"),
            SystemError::Crashed(p) => write!(f, "process {p} has crashed"),
            SystemError::NoSuchProcess(p) => write!(f, "no such process {p}"),
            SystemError::AtomicityViolation { proc, applied } => write!(
                f,
                "process {proc} applied {applied} primitives in one step (max 1)"
            ),
        }
    }
}

impl std::error::Error for SystemError {}

/// Statistics of a [`System::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Computation steps taken.
    pub steps: u64,
    /// Invocations delivered.
    pub invocations: u64,
    /// Responses produced.
    pub responses: u64,
    /// Crashes injected.
    pub crashes: u64,
    /// Whether the scheduler halted (vs. the event budget running out).
    pub halted: bool,
}

/// A complete simulated system: shared memory, `n` processes, the history
/// so far, and the execution log.
///
/// `System` is `Clone + Eq + Hash` when the process type is, which is what
/// allows `slx-explorer` to enumerate configurations exactly.
#[derive(Debug, Clone)]
pub struct System<W: Word, P> {
    memory: Memory<W>,
    procs: Vec<P>,
    pending: Vec<bool>,
    crashed: Vec<bool>,
    history: History,
    events: Vec<Event>,
}

impl<W: Word, P: Process<W>> System<W, P> {
    /// Creates a system over `memory` with the given processes; process `i`
    /// gets identifier [`ProcessId::new`]`(i)`.
    pub fn new(memory: Memory<W>, procs: Vec<P>) -> Self {
        let n = procs.len();
        System {
            memory,
            procs,
            pending: vec![false; n],
            crashed: vec![false; n],
            history: History::new(),
            events: Vec::new(),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// The history so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The execution log so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Read-only view of the shared memory.
    pub fn memory(&self) -> &Memory<W> {
        &self.memory
    }

    /// Read-only view of process `p`'s algorithm state.
    pub fn process(&self, p: ProcessId) -> Option<&P> {
        self.procs.get(p.index())
    }

    /// Whether process `p` is pending (invoked, awaiting response).
    pub fn is_pending(&self, p: ProcessId) -> bool {
        self.pending.get(p.index()).copied().unwrap_or(false)
    }

    /// Whether process `p` has crashed.
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.crashed.get(p.index()).copied().unwrap_or(false)
    }

    /// Whether process `p` currently has an enabled computation step.
    pub fn can_step(&self, p: ProcessId) -> bool {
        !self.is_crashed(p)
            && self
                .procs
                .get(p.index())
                .is_some_and(|proc| proc.has_step())
    }

    /// Processes with an enabled step.
    pub fn steppable(&self) -> Vec<ProcessId> {
        ProcessId::all(self.n())
            .filter(|&p| self.can_step(p))
            .collect()
    }

    /// Whether the system is quiescent: no process has an enabled step.
    ///
    /// A finite execution ending in a quiescent configuration is *fair* in
    /// the paper's sense (no non-crash action enabled at the final state,
    /// modulo input actions which are always enabled but external).
    pub fn quiescent(&self) -> bool {
        self.steppable().is_empty()
    }

    /// Delivers invocation `op` to process `p`.
    ///
    /// # Errors
    ///
    /// Fails if `p` is pending (a well-formed history cannot contain two
    /// consecutive invocations by one process), crashed, or out of range.
    pub fn invoke(&mut self, p: ProcessId, op: Operation) -> Result<(), SystemError> {
        let i = p.index();
        if i >= self.procs.len() {
            return Err(SystemError::NoSuchProcess(p));
        }
        if self.crashed[i] {
            return Err(SystemError::Crashed(p));
        }
        if self.pending[i] {
            return Err(SystemError::AlreadyPending(p));
        }
        self.pending[i] = true;
        self.procs[i].on_invoke(op);
        self.history.push(Action::invoke(p, op));
        self.events.push(Event::Invoked(p, op));
        Ok(())
    }

    /// Lets process `p` take one computation step.
    ///
    /// # Errors
    ///
    /// Fails if `p` crashed, is out of range, or violated atomicity by
    /// applying more than one primitive in the step.
    pub fn step(&mut self, p: ProcessId) -> Result<StepEffect, SystemError> {
        let i = p.index();
        if i >= self.procs.len() {
            return Err(SystemError::NoSuchProcess(p));
        }
        if self.crashed[i] {
            return Err(SystemError::Crashed(p));
        }
        let before = self.memory.applied();
        let effect = self.procs[i].step(&mut self.memory);
        let applied = self.memory.applied() - before;
        if applied > 1 {
            return Err(SystemError::AtomicityViolation { proc: p, applied });
        }
        match effect {
            StepEffect::Idle => {}
            StepEffect::Ran => self.events.push(Event::Stepped(p)),
            StepEffect::Responded(resp) => {
                self.events.push(Event::Stepped(p));
                self.pending[i] = false;
                self.history.push(Action::respond(p, resp));
                self.events.push(Event::Responded(p, resp));
            }
        }
        Ok(effect)
    }

    /// Crashes process `p`. Idempotent.
    pub fn crash(&mut self, p: ProcessId) -> Result<(), SystemError> {
        let i = p.index();
        if i >= self.procs.len() {
            return Err(SystemError::NoSuchProcess(p));
        }
        if !self.crashed[i] {
            self.crashed[i] = true;
            self.procs[i].on_crash();
            self.history.push(Action::crash(p));
            self.events.push(Event::Crashed(p));
        }
        Ok(())
    }

    /// A copy of the system with the memory words and process states
    /// transformed — the normalization hook for cycle detection modulo a
    /// symmetry (see [`Memory::map_words`]). History and events are
    /// dropped (configuration comparison ignores them anyway).
    pub fn transformed(
        &self,
        f_word: impl FnMut(&W) -> W,
        f_proc: impl FnMut(&P) -> P,
    ) -> System<W, P> {
        System {
            memory: self.memory.map_words(f_word),
            procs: self.procs.iter().map(f_proc).collect(),
            pending: self.pending.clone(),
            crashed: self.crashed.clone(),
            history: History::new(),
            events: Vec::new(),
        }
    }

    /// A copy of the system with the processes **reindexed** by `perm`
    /// (process `i` moves to slot `perm[i]`, its pending/crashed flags
    /// riding along), each moved process state rebuilt by
    /// `f_proc(i, &procs[i])` — which is where an algorithm retargets
    /// its own-identity fields, e.g. `me = perm[me]` — and the memory
    /// rebuilt object-by-object via [`Memory::map_objects`], where
    /// per-process register contents move to their permuted columns.
    /// History and events are dropped, like [`System::transformed`].
    ///
    /// This is the process-permutation symmetry hook: canonicalizers and
    /// the symmetry property suites build the π-image of a configuration
    /// with it and check behavioural invariance.
    ///
    /// # Panics
    /// If `perm` is not a permutation of `0..n`.
    pub fn permuted(
        &self,
        perm: &[usize],
        mut f_proc: impl FnMut(usize, &P) -> P,
        f_obj: impl FnMut(crate::ObjId, &crate::BaseObject<W>) -> crate::BaseObject<W>,
    ) -> System<W, P> {
        let n = self.procs.len();
        assert_eq!(perm.len(), n, "permutation arity mismatch");
        let mut procs: Vec<Option<P>> = (0..n).map(|_| None).collect();
        let mut pending = vec![false; n];
        let mut crashed = vec![false; n];
        for (i, p) in self.procs.iter().enumerate() {
            let slot = procs
                .get_mut(perm[i])
                .unwrap_or_else(|| panic!("perm[{i}] = {} out of range 0..{n}", perm[i]));
            assert!(
                slot.is_none(),
                "perm maps two processes to slot {}",
                perm[i]
            );
            *slot = Some(f_proc(i, p));
            pending[perm[i]] = self.pending[i];
            crashed[perm[i]] = self.crashed[i];
        }
        System {
            memory: self.memory.map_objects(f_obj),
            procs: procs
                .into_iter()
                .map(|p| p.expect("perm covers every slot"))
                .collect(),
            pending,
            crashed,
            history: History::new(),
            events: Vec::new(),
        }
    }

    /// Drives the system with `scheduler` until it halts, the event budget
    /// `max_events` is exhausted, or the scheduler makes an invalid decision
    /// (which is treated as a halt — schedulers observe the system and
    /// should not make invalid decisions, but adversaries may race a crash).
    pub fn run<S: Scheduler<W, P>>(&mut self, scheduler: &mut S, max_events: u64) -> RunStats {
        let mut stats = RunStats::default();
        for _ in 0..max_events {
            match scheduler.decide(self) {
                Decision::Halt => {
                    stats.halted = true;
                    break;
                }
                Decision::Invoke(p, op) => {
                    if self.invoke(p, op).is_err() {
                        stats.halted = true;
                        break;
                    }
                    stats.invocations += 1;
                }
                Decision::Step(p) => match self.step(p) {
                    Ok(StepEffect::Responded(_)) => {
                        stats.steps += 1;
                        stats.responses += 1;
                    }
                    Ok(StepEffect::Ran) => stats.steps += 1,
                    Ok(StepEffect::Idle) => {}
                    Err(_) => {
                        stats.halted = true;
                        break;
                    }
                },
                Decision::Crash(p) => {
                    if self.crash(p).is_err() {
                        stats.halted = true;
                        break;
                    }
                    stats.crashes += 1;
                }
            }
        }
        stats
    }
}

impl<W: Word, P: std::hash::Hash> System<W, P> {
    /// A cheap 128-bit fingerprint of the *configuration* (memory, process
    /// states, pending/crashed flags — history and events excluded, like
    /// [`Eq`]). This is what lets `slx-engine` deduplicate explored
    /// configurations without retaining a clone of every system.
    pub fn digest128(&self) -> slx_engine::Digest {
        use std::hash::Hash;
        let mut fp = slx_engine::Fingerprinter::new();
        self.hash(&mut fp);
        fp.digest()
    }
}

impl<W: Word + StateCodec, P: StateCodec> StateCodec for System<W, P> {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.memory.encode(out);
        self.procs.encode(out);
        self.pending.encode(out);
        self.crashed.encode(out);
        // History and events are excluded from `Eq`/`Hash`, but findings
        // clone the history and liveness views read the event log, so a
        // spilled configuration must carry both verbatim.
        self.history.encode(out);
        self.events.encode(out);
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(System {
            memory: Memory::decode(input)?,
            procs: Vec::decode(input)?,
            pending: Vec::decode(input)?,
            crashed: Vec::decode(input)?,
            history: History::decode(input)?,
            events: Vec::decode(input)?,
        })
    }
}

// One-byte events keep the self-contained default; event *logs* delta as
// slices through `Vec`'s hooks inside `System`'s delta below.
impl DeltaCodec for Event {}

impl<W: Word + DeltaCodec, P: DeltaCodec + PartialEq + Clone> DeltaCodec for System<W, P> {
    /// Consecutive spill records are sibling configurations of one BFS
    /// level, typically one scheduled step apart: each field deltas
    /// against its counterpart — memory and process pools
    /// element-sparsely, history and event log by shared prefix — so an
    /// unchanged field costs its two-varint slice-delta header and one
    /// compare pass. (No field bitmap: pre-comparing the O(n) fields to
    /// save those header bytes was measured to cost more encode time
    /// than it saved in bytes — every compare the bitmap needs is one
    /// the slice delta already does.) The flag byte covers only the two
    /// cheap bit-vectors.
    fn encode_delta(&self, prev: Option<&Self>, out: &mut Vec<u8>) {
        let Some(prev) = prev else {
            return self.encode(out);
        };
        let pending_changed = self.pending != prev.pending;
        let crashed_changed = self.crashed != prev.crashed;
        out.push(u8::from(pending_changed) | u8::from(crashed_changed) << 1);
        self.memory.encode_delta(Some(&prev.memory), out);
        self.procs.encode_delta(Some(&prev.procs), out);
        if pending_changed {
            self.pending.encode_delta(Some(&prev.pending), out);
        }
        if crashed_changed {
            self.crashed.encode_delta(Some(&prev.crashed), out);
        }
        self.history.encode_delta(Some(&prev.history), out);
        self.events.encode_delta(Some(&prev.events), out);
    }

    fn decode_delta(prev: Option<&Self>, input: &mut &[u8], ctx: &mut DeltaCtx) -> Option<Self> {
        let Some(prev) = prev else {
            return Self::decode(input);
        };
        let flags = u8::decode(input)?;
        if flags >= 1 << 2 {
            return None;
        }
        let memory = Memory::decode_delta(Some(&prev.memory), input, ctx)?;
        let procs = Vec::decode_delta(Some(&prev.procs), input, ctx)?;
        let pending = if flags & 1 != 0 {
            Vec::decode_delta(Some(&prev.pending), input, ctx)?
        } else {
            prev.pending.clone()
        };
        let crashed = if flags & 2 != 0 {
            Vec::decode_delta(Some(&prev.crashed), input, ctx)?
        } else {
            prev.crashed.clone()
        };
        Some(System {
            memory,
            procs,
            pending,
            crashed,
            history: History::decode_delta(Some(&prev.history), input, ctx)?,
            events: Vec::decode_delta(Some(&prev.events), input, ctx)?,
        })
    }
}

impl<W: Word, P: PartialEq> PartialEq for System<W, P> {
    fn eq(&self, other: &Self) -> bool {
        // Histories/events are deliberately excluded: two configurations
        // with the same memory and process states behave identically in the
        // future, which is the equivalence exploration needs.
        self.memory == other.memory
            && self.procs == other.procs
            && self.pending == other.pending
            && self.crashed == other.crashed
    }
}

impl<W: Word, P: Eq> Eq for System<W, P> {}

impl<W: Word, P: std::hash::Hash> std::hash::Hash for System<W, P> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.memory.hash(state);
        self.procs.hash(state);
        self.pending.hash(state);
        self.crashed.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Primitive;
    use slx_history::{Value, VarId};

    /// Test process: writes its value to a register then responds.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Writer {
        reg: crate::base::ObjId,
        pc: u8,
        val: i64,
    }

    impl Process<i64> for Writer {
        fn on_invoke(&mut self, op: Operation) {
            if let Operation::Write(_, v) = op {
                self.val = v.raw();
            }
            self.pc = 1;
        }

        fn has_step(&self) -> bool {
            self.pc > 0
        }

        fn step(&mut self, mem: &mut Memory<i64>) -> StepEffect {
            match self.pc {
                1 => {
                    mem.apply(Primitive::Write(self.reg, self.val)).unwrap();
                    self.pc = 0;
                    StepEffect::Responded(Response::Ok)
                }
                _ => StepEffect::Idle,
            }
        }
    }

    fn writer_system() -> System<i64, Writer> {
        let mut mem: Memory<i64> = Memory::new();
        let reg = mem.alloc_register(0);
        let procs = vec![Writer { reg, pc: 0, val: 0 }, Writer { reg, pc: 0, val: 0 }];
        System::new(mem, procs)
    }

    fn w(v: i64) -> Operation {
        Operation::Write(VarId::new(0), Value::new(v))
    }

    #[test]
    fn invoke_step_respond_cycle() {
        let mut sys = writer_system();
        let p0 = ProcessId::new(0);
        assert!(!sys.is_pending(p0));
        sys.invoke(p0, w(4)).unwrap();
        assert!(sys.is_pending(p0));
        assert!(sys.can_step(p0));
        let eff = sys.step(p0).unwrap();
        assert_eq!(eff, StepEffect::Responded(Response::Ok));
        assert!(!sys.is_pending(p0));
        assert_eq!(sys.history().len(), 2);
        assert!(sys.history().is_well_formed());
        assert_eq!(
            sys.events(),
            &[
                Event::Invoked(p0, w(4)),
                Event::Stepped(p0),
                Event::Responded(p0, Response::Ok)
            ]
        );
    }

    #[test]
    fn double_invoke_rejected() {
        let mut sys = writer_system();
        let p0 = ProcessId::new(0);
        sys.invoke(p0, w(1)).unwrap();
        assert_eq!(sys.invoke(p0, w(2)), Err(SystemError::AlreadyPending(p0)));
    }

    #[test]
    fn crash_blocks_everything() {
        let mut sys = writer_system();
        let p0 = ProcessId::new(0);
        sys.invoke(p0, w(1)).unwrap();
        sys.crash(p0).unwrap();
        assert!(sys.is_crashed(p0));
        assert!(!sys.can_step(p0));
        assert_eq!(sys.step(p0), Err(SystemError::Crashed(p0)));
        assert_eq!(sys.invoke(p0, w(2)), Err(SystemError::Crashed(p0)));
        // Idempotent: a second crash leaves one crash action.
        sys.crash(p0).unwrap();
        assert_eq!(
            sys.history()
                .iter()
                .filter(|a| matches!(a, Action::Crash { .. }))
                .count(),
            1
        );
        assert!(sys.history().is_well_formed());
    }

    #[test]
    fn out_of_range_process() {
        let mut sys = writer_system();
        let p9 = ProcessId::new(9);
        assert_eq!(sys.invoke(p9, w(1)), Err(SystemError::NoSuchProcess(p9)));
        assert_eq!(sys.step(p9), Err(SystemError::NoSuchProcess(p9)));
        assert_eq!(sys.crash(p9), Err(SystemError::NoSuchProcess(p9)));
    }

    #[test]
    fn quiescence() {
        let mut sys = writer_system();
        assert!(sys.quiescent());
        sys.invoke(ProcessId::new(1), w(3)).unwrap();
        assert!(!sys.quiescent());
        assert_eq!(sys.steppable(), vec![ProcessId::new(1)]);
        sys.step(ProcessId::new(1)).unwrap();
        assert!(sys.quiescent());
    }

    #[test]
    fn config_equality_ignores_history() {
        let mut a = writer_system();
        let mut b = writer_system();
        assert_eq!(a, b);
        a.invoke(ProcessId::new(0), w(1)).unwrap();
        assert_ne!(a, b);
        b.invoke(ProcessId::new(0), w(1)).unwrap();
        assert_eq!(a, b);
        // Same config reached by different histories still compares equal.
        a.step(ProcessId::new(0)).unwrap();
        b.step(ProcessId::new(0)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.history().len(), b.history().len());
    }

    /// A process that illegally applies two primitives per step.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Greedy {
        reg: crate::base::ObjId,
        pending: bool,
    }

    impl Process<i64> for Greedy {
        fn on_invoke(&mut self, _op: Operation) {
            self.pending = true;
        }
        fn has_step(&self) -> bool {
            self.pending
        }
        fn step(&mut self, mem: &mut Memory<i64>) -> StepEffect {
            mem.apply(Primitive::Write(self.reg, 1)).unwrap();
            mem.apply(Primitive::Write(self.reg, 2)).unwrap();
            self.pending = false;
            StepEffect::Responded(Response::Ok)
        }
    }

    #[test]
    fn atomicity_violation_detected() {
        let mut mem: Memory<i64> = Memory::new();
        let reg = mem.alloc_register(0);
        let mut sys = System::new(
            mem,
            vec![Greedy {
                reg,
                pending: false,
            }],
        );
        let p0 = ProcessId::new(0);
        sys.invoke(p0, w(1)).unwrap();
        assert!(matches!(
            sys.step(p0),
            Err(SystemError::AtomicityViolation { applied: 2, .. })
        ));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            SystemError::AlreadyPending(ProcessId::new(0)).to_string(),
            "process p1 is already pending"
        );
    }
}
