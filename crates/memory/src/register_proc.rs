//! A trivial register-client process, used in examples and as the simplest
//! possible implementation of the read/write register object type.

use slx_history::{Operation, Response};

use crate::base::{Memory, ObjId, PrimOutcome, Primitive};
use crate::process::{Process, StepEffect};

/// Implements the register object type on top of one base register per
/// variable: each operation is a single primitive, so the implementation is
/// trivially wait-free and linearizable.
///
/// Serves as the "known-good" implementation in tests of the safety and
/// liveness checkers, and as the simplest example of the [`Process`]
/// step-machine style.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegisterProcess {
    regs: Vec<ObjId>,
    pending: Option<Operation>,
}

impl RegisterProcess {
    /// A client of a single register (variable `x1`).
    pub fn new(reg: ObjId) -> Self {
        RegisterProcess {
            regs: vec![reg],
            pending: None,
        }
    }

    /// A client of several registers; variable `xi` maps to `regs[i]`.
    pub fn with_vars(regs: Vec<ObjId>) -> Self {
        RegisterProcess {
            regs,
            pending: None,
        }
    }
}

impl Process<i64> for RegisterProcess {
    fn on_invoke(&mut self, op: Operation) {
        self.pending = Some(op);
    }

    fn has_step(&self) -> bool {
        self.pending.is_some()
    }

    fn step(&mut self, mem: &mut Memory<i64>) -> StepEffect {
        let Some(op) = self.pending.take() else {
            return StepEffect::Idle;
        };
        match op {
            Operation::Read(x) => {
                let out = mem
                    .apply(Primitive::Read(self.regs[x.index()]))
                    .expect("register allocated");
                match out {
                    PrimOutcome::Value(v) => {
                        StepEffect::Responded(Response::ValueReturned(slx_history::Value::new(v)))
                    }
                    _ => unreachable!("read returns a value"),
                }
            }
            Operation::Write(x, v) => {
                mem.apply(Primitive::Write(self.regs[x.index()], v.raw()))
                    .expect("register allocated");
                StepEffect::Responded(Response::Ok)
            }
            other => panic!("RegisterProcess cannot execute {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::RoundRobin;
    use crate::system::System;
    use slx_history::{ProcessId, Value, VarId};

    #[test]
    fn read_sees_preceding_write() {
        let mut mem: Memory<i64> = Memory::new();
        let reg = mem.alloc_register(0);
        let procs = vec![RegisterProcess::new(reg), RegisterProcess::new(reg)];
        let mut sys = System::new(mem, procs);
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        sys.invoke(p0, Operation::Write(VarId::new(0), Value::new(7)))
            .unwrap();
        sys.step(p0).unwrap();
        sys.invoke(p1, Operation::Read(VarId::new(0))).unwrap();
        sys.step(p1).unwrap();
        assert_eq!(
            sys.history().responses_of(p1),
            vec![Response::ValueReturned(Value::new(7))]
        );
        let _ = RoundRobin::new(); // silence unused import in some cfgs
    }

    #[test]
    fn multi_var_mapping() {
        let mut mem: Memory<i64> = Memory::new();
        let a = mem.alloc_register(1);
        let b = mem.alloc_register(2);
        let mut sys = System::new(mem, vec![RegisterProcess::with_vars(vec![a, b])]);
        let p0 = ProcessId::new(0);
        sys.invoke(p0, Operation::Read(VarId::new(1))).unwrap();
        sys.step(p0).unwrap();
        assert_eq!(
            sys.history().responses_of(p0),
            vec![Response::ValueReturned(Value::new(2))]
        );
    }
}
