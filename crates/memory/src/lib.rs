//! Simulated asynchronous shared memory.
//!
//! This crate is the executable substrate for the system model of Section 2
//! of the paper: `n` asynchronous processes that may crash, interacting only
//! through atomic primitives on *base objects* (read/write registers,
//! test-and-set, compare-and-swap, fetch-and-add, atomic snapshot), with the
//! interleaving chosen by an external *scheduler* the processes do not
//! control.
//!
//! Concurrency is simulated, not real: algorithms are step-based state
//! machines (the [`Process`] trait), each step performing at most one atomic
//! primitive, and a [`Scheduler`] decides which process steps next and which
//! invocations arrive. This is what makes the paper's adversaries (which
//! "decide on the schedule and inputs of processes") directly expressible,
//! and what makes exhaustive exploration (in `slx-explorer`) possible.
//!
//! # Examples
//!
//! Run two register-client processes under a round-robin scheduler:
//!
//! ```
//! use slx_history::{Operation, ProcessId, Value, VarId};
//! use slx_memory::{Memory, ObjId, RegisterProcess, RoundRobin, System};
//!
//! let mut mem = Memory::new();
//! let reg: ObjId = mem.alloc_register(0i64);
//! let procs = vec![RegisterProcess::new(reg), RegisterProcess::new(reg)];
//! let mut sys = System::new(mem, procs);
//! sys.invoke(ProcessId::new(0), Operation::Write(VarId::new(0), Value::new(7))).unwrap();
//! sys.invoke(ProcessId::new(1), Operation::Read(VarId::new(0))).unwrap();
//! let mut sched = RoundRobin::new();
//! sys.run(&mut sched, 100);
//! assert!(sys.history().is_well_formed());
//! ```

#![warn(missing_docs)]

mod atomic_proc;
mod base;
mod crash_injector;
mod process;
mod register_proc;
mod rng;
mod sched;
mod snapshot_algo;
mod system;
mod workload;

pub use atomic_proc::{AtomicKind, AtomicObjectProcess};
pub use base::{
    decode_objid_run, encode_objid_run, BaseObject, Memory, MemoryError, ObjId, PrimOutcome,
    Primitive, Word,
};
pub use crash_injector::{CrashPlan, RandomCrashes};
pub use process::{Process, StepEffect};
pub use register_proc::RegisterProcess;
pub use rng::SmallRng;
pub use sched::{Decision, FairRandom, RoundRobin, Scheduler, SoloScheduler};
pub use snapshot_algo::{DoubleCollect, DoubleCollectResult};
pub use system::{Event, RunStats, System, SystemError};
pub use workload::{OneShot, RepeatTxn, Workload, WorkloadScheduler};
