//! Property-based validation of commit-adopt and the consensus built on it
//! under randomly generated schedules.
//!
//! Requires the external `proptest` crate: enable the `proptest-tests`
//! feature (and add the dev-dependency) in an environment with registry
//! access. Compiled out by default so offline builds succeed.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use slx_consensus::{AcOutcome, AdoptCommit, ConsWord, ObstructionFreeConsensus};
use slx_history::{Operation, ProcessId, Response, Value};
use slx_memory::{Memory, System};
use slx_safety::{ConsensusSafety, SafetyProperty};

/// Runs `n` commit-adopt participants under an arbitrary interleaving
/// (schedule entries are participant indices; leftovers run solo at the
/// end), returning the outcomes.
fn run_ac(inputs: &[i64], schedule: &[usize]) -> Vec<AcOutcome> {
    let n = inputs.len();
    let mut mem: Memory<ConsWord> = Memory::new();
    let (a, b) = AdoptCommit::alloc(&mut mem, n);
    let mut parts: Vec<AdoptCommit> = inputs
        .iter()
        .enumerate()
        .map(|(i, &x)| AdoptCommit::new(a.clone(), b.clone(), i, Value::new(x)))
        .collect();
    let mut outcomes: Vec<Option<AcOutcome>> = vec![None; n];
    for &i in schedule {
        let i = i % n;
        if outcomes[i].is_none() {
            outcomes[i] = parts[i].step(&mut mem);
        }
    }
    for i in 0..n {
        while outcomes[i].is_none() {
            outcomes[i] = parts[i].step(&mut mem);
        }
    }
    outcomes.into_iter().map(Option::unwrap).collect()
}

proptest! {
    #[test]
    fn adopt_commit_validity_and_coherence(
        inputs in prop::collection::vec(0i64..4, 2..5),
        schedule in prop::collection::vec(0usize..5, 0..60),
    ) {
        let outcomes = run_ac(&inputs, &schedule);
        // Validity: every outcome value is someone's input.
        for o in &outcomes {
            prop_assert!(inputs.contains(&o.value().raw()), "{outcomes:?}");
        }
        // Coherence: all commits carry one value, and a commit forces
        // everyone's value.
        let commit_vals: Vec<Value> = outcomes
            .iter()
            .filter_map(|o| match o {
                AcOutcome::Commit(v) => Some(*v),
                AcOutcome::Adopt(_) => None,
            })
            .collect();
        if let Some(&v) = commit_vals.first() {
            prop_assert!(commit_vals.iter().all(|&w| w == v), "{outcomes:?}");
            prop_assert!(outcomes.iter().all(|o| o.value() == v), "{outcomes:?}");
        }
        // Convergence: identical inputs all commit.
        if inputs.iter().all(|&x| x == inputs[0]) {
            prop_assert!(outcomes
                .iter()
                .all(|o| matches!(o, AcOutcome::Commit(v) if v.raw() == inputs[0])));
        }
    }

    #[test]
    fn of_consensus_safe_under_random_schedules(
        proposals in prop::collection::vec(0i64..4, 2..4),
        schedule in prop::collection::vec(0usize..4, 0..200),
    ) {
        let n = proposals.len();
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, n, 64);
        let procs = (0..n)
            .map(|i| ObstructionFreeConsensus::new(layout.clone(), ProcessId::new(i), n))
            .collect();
        let mut sys: System<ConsWord, ObstructionFreeConsensus> = System::new(mem, procs);
        for (i, &v) in proposals.iter().enumerate() {
            sys.invoke(ProcessId::new(i), Operation::Propose(Value::new(v))).unwrap();
        }
        for &i in &schedule {
            let q = ProcessId::new(i % n);
            if sys.can_step(q) {
                let _ = sys.step(q);
            }
        }
        prop_assert!(
            ConsensusSafety::new().allows(sys.history()),
            "history: {}",
            sys.history()
        );
        // Any process that decided agrees with every other decider — and
        // validity ties decisions to proposals.
        let decided: Vec<Value> = (0..n)
            .flat_map(|i| sys.history().responses_of(ProcessId::new(i)))
            .filter_map(|r| match r {
                Response::Decided(v) => Some(v),
                _ => None,
            })
            .collect();
        if let Some(&first) = decided.first() {
            prop_assert!(decided.iter().all(|&v| v == first));
            prop_assert!(proposals.contains(&first.raw()));
        }
    }
}
