//! Process-level versions of Theorem 4.9's trivial implementations.

use slx_history::{Operation, ProcessId, Response};
use slx_memory::{Memory, Process, StepEffect};

use crate::word::ConsWord;

/// The trivial implementation `It`: accepts any invocation and never
/// responds (it has no enabled steps at all, so every finite run of a
/// system composed of these processes is quiescent, hence fair).
///
/// Uses no base objects. Ensures every safety property that satisfies the
/// paper's standing assumptions, because its histories contain only
/// invocations and crashes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TrivialNoResponse {
    _priv: (),
}

impl TrivialNoResponse {
    /// Creates the process.
    pub fn new() -> Self {
        TrivialNoResponse::default()
    }
}

impl Process<ConsWord> for TrivialNoResponse {
    fn on_invoke(&mut self, _op: Operation) {}

    fn has_step(&self) -> bool {
        false
    }

    fn step(&mut self, _mem: &mut Memory<ConsWord>) -> StepEffect {
        StepEffect::Idle
    }
}

/// The implementation `Ib` of Theorem 4.9, process-level: the designated
/// process answers its first designated invocation with the designated
/// response, then never responds again; everyone else never responds.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SingleResponse {
    me: ProcessId,
    designated_proc: ProcessId,
    designated_op: Operation,
    response: Response,
    /// `true` until the one response has been (or can no longer be) given.
    armed: bool,
    pending_designated: bool,
}

impl SingleResponse {
    /// Creates the `Ib` process `me`; only `designated_proc` answering
    /// `designated_op` with `response` ever responds.
    pub fn new(
        me: ProcessId,
        designated_proc: ProcessId,
        designated_op: Operation,
        response: Response,
    ) -> Self {
        SingleResponse {
            me,
            designated_proc,
            designated_op,
            response,
            armed: true,
            pending_designated: false,
        }
    }
}

impl Process<ConsWord> for SingleResponse {
    fn on_invoke(&mut self, op: Operation) {
        if self.me == self.designated_proc && self.armed && op == self.designated_op {
            self.pending_designated = true;
        } else {
            // Any other invocation permanently silences this process.
            self.armed = false;
            self.pending_designated = false;
        }
    }

    fn has_step(&self) -> bool {
        self.pending_designated
    }

    fn step(&mut self, _mem: &mut Memory<ConsWord>) -> StepEffect {
        if self.pending_designated {
            self.pending_designated = false;
            self.armed = false;
            StepEffect::Responded(self.response)
        } else {
            StepEffect::Idle
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::Value;
    use slx_memory::{RoundRobin, System};
    use slx_safety::{ConsensusSafety, SafetyProperty};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn propose(x: i64) -> Operation {
        Operation::Propose(Value::new(x))
    }

    #[test]
    fn trivial_never_responds_and_system_is_fair() {
        let mem: Memory<ConsWord> = Memory::new();
        let mut sys = System::new(mem, vec![TrivialNoResponse::new(); 2]);
        sys.invoke(p(0), propose(1)).unwrap();
        sys.invoke(p(1), propose(2)).unwrap();
        let stats = sys.run(&mut RoundRobin::new(), 100);
        assert_eq!(stats.responses, 0);
        assert!(sys.quiescent(), "no enabled steps: finite run is fair");
        assert!(ConsensusSafety::new().allows(sys.history()));
        assert!(sys.history().pending(p(0)) && sys.history().pending(p(1)));
    }

    #[test]
    fn single_response_answers_designated_once() {
        let mem: Memory<ConsWord> = Memory::new();
        let designated = propose(1);
        let resp = Response::Decided(Value::new(1));
        let procs = vec![
            SingleResponse::new(p(0), p(0), designated, resp),
            SingleResponse::new(p(1), p(0), designated, resp),
        ];
        let mut sys = System::new(mem, procs);
        sys.invoke(p(0), designated).unwrap();
        sys.run(&mut RoundRobin::new(), 100);
        assert_eq!(sys.history().responses_of(p(0)), vec![resp]);
        // Second designated invocation: silence.
        sys.invoke(p(0), designated).unwrap();
        let stats = sys.run(&mut RoundRobin::new(), 100);
        assert_eq!(stats.responses, 0);
        assert!(sys.quiescent());
        assert!(ConsensusSafety::new().allows(sys.history()));
    }

    #[test]
    fn single_response_wrong_op_silences() {
        let mem: Memory<ConsWord> = Memory::new();
        let designated = propose(1);
        let resp = Response::Decided(Value::new(1));
        let mut sys = System::new(mem, vec![SingleResponse::new(p(0), p(0), designated, resp)]);
        sys.invoke(p(0), propose(9)).unwrap();
        let stats = sys.run(&mut RoundRobin::new(), 100);
        assert_eq!(stats.responses, 0);
    }

    #[test]
    fn non_designated_process_never_responds() {
        let mem: Memory<ConsWord> = Memory::new();
        let designated = propose(1);
        let resp = Response::Decided(Value::new(1));
        let mut sys = System::new(mem, vec![SingleResponse::new(p(0), p(1), designated, resp)]);
        sys.invoke(p(0), designated).unwrap();
        let stats = sys.run(&mut RoundRobin::new(), 100);
        assert_eq!(stats.responses, 0);
    }
}
