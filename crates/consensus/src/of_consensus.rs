//! Obstruction-free consensus from registers: rounds of commit-adopt plus
//! a decision register.

use slx_engine::{DeltaCodec, DeltaCtx, StateCodec};
use slx_history::{Operation, ProcessId, Response, Value};
use slx_memory::{Memory, ObjId, PrimOutcome, Primitive, Process, StepEffect};

use crate::adopt_commit::{AcNormalizedState, AcOutcome, AdoptCommit};
use crate::word::ConsWord;

/// Shared register layout for one [`ObstructionFreeConsensus`] instance:
/// a decision register and `max_rounds` pre-allocated commit-adopt
/// objects.
///
/// The per-round register ids live in one shared flat `Arc` slice (`2n`
/// ids per round: the `a` array then the `b` array) instead of the
/// earlier `Vec<(Vec, Vec)>` of vectors: the exploration kernel clones
/// every process — hence its layout — once per generated successor, and
/// the disk-backed frontier decodes one per restored state, so the
/// nested shape cost ~130 heap allocations per clone where this one
/// costs a reference-count bump (and a single allocation per decode).
// `Hash` stays derived (it hashes the slice contents): the manual
// `PartialEq` only adds a pointer-identity fast path, and pointer
// equality implies content equality, so `a == b ⇒ hash(a) == hash(b)`
// still holds.
#[allow(clippy::derived_hash_with_manual_eq)]
#[derive(Debug, Clone, Eq, Hash)]
pub struct Layout {
    decision: ObjId,
    /// Participants per commit-adopt object.
    n: usize,
    /// `a`-then-`b` register ids, `2n` per round.
    regs: std::sync::Arc<[ObjId]>,
}

impl PartialEq for Layout {
    fn eq(&self, other: &Self) -> bool {
        // Pointer-identical slices (every clone of one layout — i.e. all
        // processes of a configuration and all its exploration
        // descendants) short-circuit the element walk: the kernel
        // compares sibling configurations per spilled record, where
        // walking `2n × max_rounds` ids dominates the whole encode.
        self.decision == other.decision
            && self.n == other.n
            && (std::sync::Arc::ptr_eq(&self.regs, &other.regs) || self.regs == other.regs)
    }
}

impl Layout {
    /// The decision register.
    #[must_use]
    pub fn decision(&self) -> ObjId {
        self.decision
    }

    /// The `(a, b)` register arrays of round `r`'s commit-adopt object,
    /// or `None` past the pre-allocated rounds.
    #[must_use]
    pub fn round_registers(&self, r: usize) -> Option<(&[ObjId], &[ObjId])> {
        let start = r.checked_mul(2 * self.n)?;
        let round = self.regs.get(start..start + 2 * self.n)?;
        Some((&round[..self.n], &round[self.n..]))
    }

    /// Pre-allocated rounds.
    #[must_use]
    pub fn max_rounds(&self) -> usize {
        if self.n == 0 {
            0
        } else {
            self.regs.len() / (2 * self.n)
        }
    }
}

/// [`ObstructionFreeConsensus::normalized_state`]'s projection: estimate,
/// round rebased to the caller's base, and the control state with
/// register identities erased.
pub type OfNormalizedState = (Value, usize, (u8, Option<AcNormalizedState>, Option<Value>));

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Pc {
    Idle,
    CheckDecision,
    Round(AdoptCommit),
    WriteDecision(Value),
}

/// The register-only consensus used for Figure 1a's white point:
/// **obstruction-free** ((1,1)-free) and safe (agreement + validity).
///
/// Algorithm (the classic rounds-of-commit-adopt construction, cf. the
/// paper's citations [20, 17] for obstruction-free consensus from
/// registers): a proposer keeps an estimate, and in round `r` runs
/// commit-adopt object `AC_r`. On `Commit(v)` it writes the decision
/// register `D` and decides `v`; on `Adopt(v)` it sets its estimate to `v`
/// and moves to round `r + 1`, first checking `D` (deciding whatever a
/// faster process decided). Commit-adopt coherence makes disagreement
/// impossible; a process running solo reaches a round nobody else touched
/// and commits — obstruction-freedom. Under contention, rounds can adopt
/// forever, which is exactly the behaviour the paper's adversary exploits.
///
/// Rounds are pre-allocated; see [`ObstructionFreeConsensus::layout`]'s
/// `max_rounds` (the run panics if an execution exceeds it, which bounds
/// experiments honestly instead of silently mis-deciding).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObstructionFreeConsensus {
    layout: Layout,
    me: ProcessId,
    n: usize,
    est: Value,
    round: usize,
    pc: Pc,
    /// Completed commit-adopt rounds (exposed for step-complexity benches).
    rounds_used: u64,
}

impl ObstructionFreeConsensus {
    /// Allocates the shared registers: 1 decision register plus
    /// `max_rounds` commit-adopt objects of `2n` registers each.
    pub fn layout(mem: &mut Memory<ConsWord>, n: usize, max_rounds: usize) -> Layout {
        let decision = mem.alloc_register(ConsWord::Bot);
        let mut regs = Vec::with_capacity(max_rounds * 2 * n);
        for _ in 0..max_rounds {
            let (a, b) = AdoptCommit::alloc(mem, n);
            regs.extend(a);
            regs.extend(b);
        }
        Layout {
            decision,
            n,
            regs: regs.into(),
        }
    }

    /// Creates the algorithm instance of process `me` (of `n`).
    pub fn new(layout: Layout, me: ProcessId, n: usize) -> Self {
        ObstructionFreeConsensus {
            layout,
            me,
            n,
            est: Value::new(0),
            round: 0,
            pc: Pc::Idle,
            rounds_used: 0,
        }
    }

    /// Commit-adopt rounds completed so far by this process.
    pub fn rounds_used(&self) -> u64 {
        self.rounds_used
    }

    /// The round this process is currently working in.
    #[must_use]
    pub fn round(&self) -> usize {
        self.round
    }

    /// The shared register layout this process runs over.
    #[must_use]
    pub fn shared_layout(&self) -> &Layout {
        &self.layout
    }

    /// The process state normalized **modulo a round shift**: estimate,
    /// `round - base_round`, and the control state with register
    /// identities erased ([`AdoptCommit::normalized_state`]).
    ///
    /// The algorithm only ever touches the decision register and the
    /// commit-adopt objects at its current round and above, and treats
    /// every round identically, so behaviour from a configuration is
    /// invariant under shifting all processes' rounds by a common base
    /// (given equal relative register contents and enough pre-allocated
    /// headroom). A repeat of the shifted state therefore witnesses a
    /// genuine infinite execution — the consensus-side analogue of
    /// `slx_tm::normalize`, used by the bivalence-adversary lasso.
    ///
    /// # Panics
    /// If `base_round` exceeds the current round.
    #[must_use]
    pub fn normalized_state(&self, base_round: usize) -> OfNormalizedState {
        let pc = match &self.pc {
            Pc::Idle => (0, None, None),
            Pc::CheckDecision => (1, None, None),
            Pc::Round(ac) => (2, Some(ac.normalized_state()), None),
            Pc::WriteDecision(v) => (3, None, Some(*v)),
        };
        (self.est, self.round - base_round, pc)
    }

    /// A copy of this process re-indexed to `me`, its in-round
    /// sub-machine (if any) retargeted with it
    /// ([`AdoptCommit::retargeted`]): the process-permutation hook used
    /// by [`crate::permuted_of_system`] and the symmetry property
    /// suites.
    #[must_use]
    pub fn retargeted(&self, me: ProcessId) -> Self {
        let mut p = self.clone();
        p.me = me;
        if let Pc::Round(ac) = &mut p.pc {
            *ac = ac.retargeted(me.index());
        }
        p
    }
}

impl StateCodec for Layout {
    fn encode(&self, out: &mut Vec<u8>) {
        self.decision.encode(out);
        self.n.encode(out);
        // Layouts allocate their registers in one consecutive run, which
        // this collapses to three varints — the layout rides along with
        // every spilled configuration, twice per two-process system.
        slx_memory::encode_objid_run(&self.regs, out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let decision = ObjId::decode(input)?;
        let n = usize::decode(input)?;
        let regs = slx_memory::decode_objid_run(input)?;
        if n > 0 && !regs.len().is_multiple_of(2 * n) {
            return None;
        }
        Some(Layout {
            decision,
            n,
            regs: regs.into(),
        })
    }
}

impl DeltaCodec for Layout {
    /// Every process of a configuration — and every sibling in a chunk —
    /// runs over the *same* layout, so the common case is one marker
    /// byte, and the decode side restores the `Arc` sharing the
    /// in-memory kernel enjoys (the whole reason clones of this type are
    /// a refcount bump) instead of re-materializing the register slice
    /// per record.
    fn encode_delta(&self, prev: Option<&Self>, out: &mut Vec<u8>) {
        let same = prev.is_some_and(|prev| {
            self.decision == prev.decision
                && self.n == prev.n
                && (std::sync::Arc::ptr_eq(&self.regs, &prev.regs) || self.regs == prev.regs)
        });
        out.push(u8::from(same));
        if !same {
            self.encode(out);
        }
    }

    fn decode_delta(prev: Option<&Self>, input: &mut &[u8], ctx: &mut DeltaCtx) -> Option<Self> {
        match u8::decode(input)? {
            1 => prev.cloned(),
            0 => {
                let decision = ObjId::decode(input)?;
                let n = usize::decode(input)?;
                // Self-contained (chunk-first) records intern the slice:
                // every chunk of a replay shares one allocation instead
                // of materializing `2n × max_rounds` ids per chunk.
                let before = *input;
                let regs = slx_memory::decode_objid_run(input)?;
                if n > 0 && !regs.len().is_multiple_of(2 * n) {
                    return None;
                }
                let key = &before[..before.len() - input.len()];
                let regs: std::sync::Arc<[ObjId]> = ctx.intern(key, regs.into());
                Some(Layout { decision, n, regs })
            }
            _ => None,
        }
    }
}

impl StateCodec for ObstructionFreeConsensus {
    fn encode(&self, out: &mut Vec<u8>) {
        self.layout.encode(out);
        self.me.encode(out);
        self.n.encode(out);
        self.est.encode(out);
        self.round.encode(out);
        match &self.pc {
            Pc::Idle => out.push(0),
            Pc::CheckDecision => out.push(1),
            Pc::Round(ac) => {
                out.push(2);
                ac.encode(out);
            }
            Pc::WriteDecision(v) => {
                out.push(3);
                v.encode(out);
            }
        }
        self.rounds_used.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let layout = Layout::decode(input)?;
        let me = ProcessId::decode(input)?;
        let n = usize::decode(input)?;
        let est = Value::decode(input)?;
        let round = usize::decode(input)?;
        let pc = match u8::decode(input)? {
            0 => Pc::Idle,
            1 => Pc::CheckDecision,
            2 => Pc::Round(AdoptCommit::decode(input)?),
            3 => Pc::WriteDecision(Value::decode(input)?),
            _ => return None,
        };
        Some(ObstructionFreeConsensus {
            layout,
            me,
            n,
            est,
            round,
            pc,
            rounds_used: u64::decode(input)?,
        })
    }
}

impl DeltaCodec for ObstructionFreeConsensus {
    /// The layout collapses to its one-byte same-as-predecessor marker
    /// (see [`Layout`]'s hooks) and an in-round sub-machine deltas
    /// against the predecessor's; the remaining locals are a few bytes.
    fn encode_delta(&self, prev: Option<&Self>, out: &mut Vec<u8>) {
        let Some(prev) = prev else {
            return self.encode(out);
        };
        self.layout.encode_delta(Some(&prev.layout), out);
        self.me.encode(out);
        self.n.encode(out);
        self.est.encode(out);
        self.round.encode(out);
        match &self.pc {
            Pc::Idle => out.push(0),
            Pc::CheckDecision => out.push(1),
            Pc::Round(ac) => {
                out.push(2);
                // Mirrored on decode: the sub-machine deltas iff the
                // predecessor was also mid-round.
                let prev_ac = match &prev.pc {
                    Pc::Round(prev_ac) => Some(prev_ac),
                    _ => None,
                };
                ac.encode_delta(prev_ac, out);
            }
            Pc::WriteDecision(v) => {
                out.push(3);
                v.encode(out);
            }
        }
        self.rounds_used.encode(out);
    }

    fn decode_delta(prev: Option<&Self>, input: &mut &[u8], ctx: &mut DeltaCtx) -> Option<Self> {
        let Some(prev) = prev else {
            return Self::decode(input);
        };
        let layout = Layout::decode_delta(Some(&prev.layout), input, ctx)?;
        let me = ProcessId::decode(input)?;
        let n = usize::decode(input)?;
        let est = Value::decode(input)?;
        let round = usize::decode(input)?;
        let pc = match u8::decode(input)? {
            0 => Pc::Idle,
            1 => Pc::CheckDecision,
            2 => {
                let prev_ac = match &prev.pc {
                    Pc::Round(prev_ac) => Some(prev_ac),
                    _ => None,
                };
                Pc::Round(AdoptCommit::decode_delta(prev_ac, input, ctx)?)
            }
            3 => Pc::WriteDecision(Value::decode(input)?),
            _ => return None,
        };
        Some(ObstructionFreeConsensus {
            layout,
            me,
            n,
            est,
            round,
            pc,
            rounds_used: u64::decode(input)?,
        })
    }
}

impl Process<ConsWord> for ObstructionFreeConsensus {
    fn has_symmetry_reduction() -> bool {
        true
    }

    fn canonical_system_digest(sys: &slx_memory::System<ConsWord, Self>) -> slx_engine::Digest {
        crate::normalize::canonical_of_digest(sys)
    }

    fn on_invoke(&mut self, op: Operation) {
        let Operation::Propose(v) = op else {
            panic!("consensus accepts only propose(), got {op}");
        };
        self.est = v;
        self.round = 0;
        self.pc = Pc::CheckDecision;
    }

    fn has_step(&self) -> bool {
        !matches!(self.pc, Pc::Idle)
    }

    fn step(&mut self, mem: &mut Memory<ConsWord>) -> StepEffect {
        match std::mem::replace(&mut self.pc, Pc::Idle) {
            Pc::Idle => StepEffect::Idle,
            Pc::CheckDecision => {
                let d = match mem
                    .apply(Primitive::Read(self.layout.decision))
                    .expect("decision register allocated")
                {
                    PrimOutcome::Value(w) => w,
                    _ => unreachable!("registers return values"),
                };
                if let ConsWord::Val(v) = d {
                    return StepEffect::Responded(Response::Decided(v));
                }
                let (a, b) = self.layout.round_registers(self.round).unwrap_or_else(|| {
                    panic!(
                        "consensus exhausted its {} pre-allocated rounds",
                        self.layout.max_rounds()
                    )
                });
                let (a, b) = (a.to_vec(), b.to_vec());
                self.pc = Pc::Round(AdoptCommit::new(a, b, self.me.index(), self.est));
                StepEffect::Ran
            }
            Pc::Round(mut ac) => {
                match ac.step(mem) {
                    None => self.pc = Pc::Round(ac),
                    Some(AcOutcome::Commit(v)) => {
                        self.rounds_used += 1;
                        self.pc = Pc::WriteDecision(v);
                    }
                    Some(AcOutcome::Adopt(v)) => {
                        self.rounds_used += 1;
                        self.est = v;
                        self.round += 1;
                        self.pc = Pc::CheckDecision;
                    }
                }
                StepEffect::Ran
            }
            Pc::WriteDecision(v) => {
                mem.apply(Primitive::Write(self.layout.decision, ConsWord::Val(v)))
                    .expect("decision register allocated");
                StepEffect::Responded(Response::Decided(v))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::History;
    use slx_memory::{FairRandom, RoundRobin, SoloScheduler, System};
    use slx_safety::{ConsensusSafety, SafetyProperty};

    fn v(x: i64) -> Value {
        Value::new(x)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn system(n: usize) -> System<ConsWord, ObstructionFreeConsensus> {
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, n, 64);
        let procs = (0..n)
            .map(|i| ObstructionFreeConsensus::new(layout.clone(), p(i), n))
            .collect();
        System::new(mem, procs)
    }

    fn decided(h: &History, q: ProcessId) -> Option<Value> {
        h.responses_of(q).iter().find_map(|r| match r {
            Response::Decided(v) => Some(*v),
            _ => None,
        })
    }

    #[test]
    fn solo_run_decides_own_value() {
        let mut sys = system(2);
        sys.invoke(p(0), Operation::Propose(v(7))).unwrap();
        sys.run(&mut SoloScheduler::new(p(0)), 10_000);
        assert_eq!(decided(sys.history(), p(0)), Some(v(7)));
        assert!(ConsensusSafety::new().allows(sys.history()));
    }

    #[test]
    fn sequential_proposers_agree() {
        let mut sys = system(2);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.run(&mut SoloScheduler::new(p(0)), 10_000);
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        sys.run(&mut SoloScheduler::new(p(1)), 10_000);
        assert_eq!(decided(sys.history(), p(0)), Some(v(1)));
        assert_eq!(decided(sys.history(), p(1)), Some(v(1)));
        assert!(ConsensusSafety::new().allows(sys.history()));
    }

    #[test]
    fn round_robin_contention_terminates_and_agrees() {
        // Lockstep is not an adversarial schedule for this algorithm: both
        // adopt a common value and commit in the next round.
        let mut sys = system(2);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        sys.run(&mut RoundRobin::new(), 100_000);
        let d0 = decided(sys.history(), p(0)).expect("p1 decided");
        let d1 = decided(sys.history(), p(1)).expect("p2 decided");
        assert_eq!(d0, d1);
        assert!(ConsensusSafety::new().allows(sys.history()));
    }

    #[test]
    fn random_schedules_always_safe() {
        for seed in 0..50 {
            let mut sys = system(3);
            sys.invoke(p(0), Operation::Propose(v(10))).unwrap();
            sys.invoke(p(1), Operation::Propose(v(20))).unwrap();
            sys.invoke(p(2), Operation::Propose(v(30))).unwrap();
            sys.run(&mut FairRandom::new(seed), 50_000);
            assert!(
                ConsensusSafety::new().allows(sys.history()),
                "seed {seed}: {}",
                sys.history()
            );
            // Fair random runs of this length should also decide (this is
            // probabilistic termination, not wait-freedom).
            for q in ProcessId::all(3) {
                assert!(decided(sys.history(), q).is_some(), "seed {seed} {q}");
            }
        }
    }

    #[test]
    fn crash_of_leader_does_not_block_others() {
        let mut sys = system(2);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        // p1 takes a few steps then crashes mid-round.
        for _ in 0..3 {
            sys.step(p(0)).unwrap();
        }
        sys.crash(p(0)).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        sys.run(&mut SoloScheduler::new(p(1)), 10_000);
        let d1 = decided(sys.history(), p(1)).expect("survivor decides");
        // The survivor may adopt the crashed process's value or keep its
        // own; either way validity holds.
        assert!(d1 == v(1) || d1 == v(2));
        assert!(ConsensusSafety::new().allows(sys.history()));
    }

    #[test]
    fn late_solo_proposer_adopts_existing_decision() {
        let mut sys = system(3);
        sys.invoke(p(0), Operation::Propose(v(5))).unwrap();
        sys.run(&mut SoloScheduler::new(p(0)), 10_000);
        sys.invoke(p(2), Operation::Propose(v(9))).unwrap();
        sys.run(&mut SoloScheduler::new(p(2)), 10_000);
        assert_eq!(decided(sys.history(), p(2)), Some(v(5)));
    }

    #[test]
    #[should_panic(expected = "propose")]
    fn non_propose_rejected() {
        let mut sys = system(1);
        let _ = sys.invoke(p(0), Operation::TxStart);
    }
}
