//! Wait-free consensus from a single compare-and-swap object.

use slx_engine::{DeltaCodec, StateCodec};
use slx_history::{Operation, Response, Value};
use slx_memory::{Memory, ObjId, PrimOutcome, Primitive, Process, StepEffect};

use crate::word::ConsWord;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Pc {
    Idle,
    TryCas(Value),
    ReadBack,
}

/// Consensus from one CAS object: `propose(v)` CASes `⊥ → v`, then reads
/// the object and decides whatever is there.
///
/// Wait-free in exactly two primitives — the paper's impossibilities
/// evaporate once the base objects are stronger than registers, which is
/// why Figure 1a is stated *for implementations from registers*. This
/// implementation is the control in the Figure 1a experiment and the
/// baseline in the step-complexity benches.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CasConsensus {
    obj: ObjId,
    pc: Pc,
}

impl CasConsensus {
    /// Allocates the shared CAS object.
    pub fn alloc(mem: &mut Memory<ConsWord>) -> ObjId {
        mem.alloc_cas(ConsWord::Bot)
    }

    /// Creates the algorithm instance for one process.
    pub fn new(obj: ObjId) -> Self {
        CasConsensus { obj, pc: Pc::Idle }
    }
}

impl StateCodec for CasConsensus {
    fn encode(&self, out: &mut Vec<u8>) {
        self.obj.encode(out);
        match &self.pc {
            Pc::Idle => out.push(0),
            Pc::TryCas(v) => {
                out.push(1);
                v.encode(out);
            }
            Pc::ReadBack => out.push(2),
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let obj = ObjId::decode(input)?;
        let pc = match u8::decode(input)? {
            0 => Pc::Idle,
            1 => Pc::TryCas(Value::decode(input)?),
            2 => Pc::ReadBack,
            _ => return None,
        };
        Some(CasConsensus { obj, pc })
    }
}

// Three bytes at most: the self-contained default is minimal.
impl DeltaCodec for CasConsensus {}

impl Process<ConsWord> for CasConsensus {
    fn on_invoke(&mut self, op: Operation) {
        let Operation::Propose(v) = op else {
            panic!("consensus accepts only propose(), got {op}");
        };
        self.pc = Pc::TryCas(v);
    }

    fn has_step(&self) -> bool {
        !matches!(self.pc, Pc::Idle)
    }

    fn step(&mut self, mem: &mut Memory<ConsWord>) -> StepEffect {
        match self.pc {
            Pc::Idle => StepEffect::Idle,
            Pc::TryCas(v) => {
                mem.apply(Primitive::Cas {
                    obj: self.obj,
                    expected: ConsWord::Bot,
                    new: ConsWord::Val(v),
                })
                .expect("cas object allocated");
                self.pc = Pc::ReadBack;
                StepEffect::Ran
            }
            Pc::ReadBack => {
                let w = match mem
                    .apply(Primitive::Read(self.obj))
                    .expect("cas object allocated")
                {
                    PrimOutcome::Value(w) => w,
                    _ => unreachable!("cas read returns a value"),
                };
                self.pc = Pc::Idle;
                match w {
                    ConsWord::Val(v) => StepEffect::Responded(Response::Decided(v)),
                    _ => unreachable!("decision written before read-back"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::{History, ProcessId};
    use slx_memory::{FairRandom, System};
    use slx_safety::{ConsensusSafety, SafetyProperty};

    fn v(x: i64) -> Value {
        Value::new(x)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn system(n: usize) -> System<ConsWord, CasConsensus> {
        let mut mem: Memory<ConsWord> = Memory::new();
        let obj = CasConsensus::alloc(&mut mem);
        let procs = (0..n).map(|_| CasConsensus::new(obj)).collect();
        System::new(mem, procs)
    }

    fn decided(h: &History, q: ProcessId) -> Option<Value> {
        h.responses_of(q).iter().find_map(|r| match r {
            Response::Decided(v) => Some(*v),
            _ => None,
        })
    }

    #[test]
    fn wait_free_two_steps() {
        let mut sys = system(1);
        sys.invoke(p(0), Operation::Propose(v(3))).unwrap();
        assert_eq!(sys.step(p(0)).unwrap(), StepEffect::Ran);
        assert_eq!(
            sys.step(p(0)).unwrap(),
            StepEffect::Responded(Response::Decided(v(3)))
        );
    }

    #[test]
    fn every_schedule_decides_and_agrees() {
        for seed in 0..100 {
            let mut sys = system(3);
            for i in 0..3 {
                sys.invoke(p(i), Operation::Propose(v(i as i64 + 1)))
                    .unwrap();
            }
            sys.run(&mut FairRandom::new(seed), 1000);
            let d0 = decided(sys.history(), p(0)).expect("wait-free");
            for i in 1..3 {
                assert_eq!(decided(sys.history(), p(i)), Some(d0));
            }
            assert!(ConsensusSafety::new().allows(sys.history()));
        }
    }

    #[test]
    fn decision_survives_crashes_of_others() {
        let mut sys = system(2);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.step(p(0)).unwrap(); // p1's CAS lands
        sys.crash(p(0)).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        sys.step(p(1)).unwrap();
        sys.step(p(1)).unwrap();
        assert_eq!(decided(sys.history(), p(1)), Some(v(1)));
    }
}
