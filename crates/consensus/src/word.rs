//! The register alphabet of the consensus implementations.

use slx_engine::{DeltaCodec, StateCodec};
use slx_history::Value;

/// Contents of the registers used by the consensus algorithms: the
/// uninitialized marker `⊥`, a bare value (proposal/estimate arrays and the
/// decision register), or a phase-2 commit-adopt entry `(flag, value)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsWord {
    /// `⊥` — not yet written.
    Bot,
    /// A bare value.
    Val(Value),
    /// A commit-adopt phase-2 entry: `true` means "commit".
    Flagged(bool, Value),
}

impl ConsWord {
    /// Extracts the value, if any.
    pub fn value(self) -> Option<Value> {
        match self {
            ConsWord::Bot => None,
            ConsWord::Val(v) | ConsWord::Flagged(_, v) => Some(v),
        }
    }
}

impl StateCodec for ConsWord {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ConsWord::Bot => out.push(0),
            ConsWord::Val(v) => {
                out.push(1);
                v.encode(out);
            }
            ConsWord::Flagged(flag, v) => {
                out.push(2);
                flag.encode(out);
                v.encode(out);
            }
        }
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(input)? {
            0 => ConsWord::Bot,
            1 => ConsWord::Val(Value::decode(input)?),
            2 => ConsWord::Flagged(bool::decode(input)?, Value::decode(input)?),
            _ => return None,
        })
    }
}

// Two or three bytes at most: the self-contained default is minimal.
impl DeltaCodec for ConsWord {}

impl std::fmt::Display for ConsWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsWord::Bot => write!(f, "⊥"),
            ConsWord::Val(v) => write!(f, "{v}"),
            ConsWord::Flagged(true, v) => write!(f, "(commit,{v})"),
            ConsWord::Flagged(false, v) => write!(f, "(adopt,{v})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_extraction() {
        assert_eq!(ConsWord::Bot.value(), None);
        assert_eq!(ConsWord::Val(Value::new(3)).value(), Some(Value::new(3)));
        assert_eq!(
            ConsWord::Flagged(true, Value::new(4)).value(),
            Some(Value::new(4))
        );
    }

    #[test]
    fn display() {
        assert_eq!(ConsWord::Bot.to_string(), "⊥");
        assert_eq!(
            ConsWord::Flagged(false, Value::new(1)).to_string(),
            "(adopt,1)"
        );
    }
}
