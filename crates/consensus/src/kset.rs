//! k-set agreement from registers, by partitioning.
//!
//! The paper notes (Section 1) that its impossibilities also apply to
//! k-set agreement. This module provides the standard *positive* side:
//! partition the `n` processes into `k` groups, each group running its own
//! register-only consensus. At most `k` distinct values are decided
//! (k-agreement) and each is some process's proposal (validity) — i.e.
//! [`slx_safety::KSetAgreementSafety`] holds by construction, which the
//! tests verify mechanically against the real implementation.
//!
//! Liveness inherits the per-group structure: a process running without
//! step contention *within its group* decides (group-wise
//! obstruction-freedom), so with at most `k` steppers that occupy distinct
//! groups everyone progresses, while two contending steppers in one group
//! can still be starved by the bivalence adversary — the k-set analogue of
//! Figure 1a's frontier.

use slx_history::ProcessId;
use slx_memory::Memory;

use crate::of_consensus::ObstructionFreeConsensus;
use crate::word::ConsWord;

/// Allocates a `k`-group partitioned k-set agreement instance for `n`
/// processes and returns the per-process algorithm instances (process `i`
/// joins group `i % k`).
///
/// # Panics
///
/// Panics unless `1 ≤ k ≤ n`.
pub fn grouped_kset(
    mem: &mut Memory<ConsWord>,
    n: usize,
    k: usize,
    max_rounds: usize,
) -> Vec<ObstructionFreeConsensus> {
    assert!(k >= 1 && k <= n, "k-set agreement requires 1 <= k <= n");
    // Group g contains processes {i : i % k == g}; member order gives the
    // within-group index.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for i in 0..n {
        groups[i % k].push(i);
    }
    let layouts: Vec<_> = groups
        .iter()
        .map(|members| ObstructionFreeConsensus::layout(mem, members.len(), max_rounds))
        .collect();
    (0..n)
        .map(|i| {
            let g = i % k;
            let within = groups[g].iter().position(|&m| m == i).expect("member");
            ObstructionFreeConsensus::new(
                layouts[g].clone(),
                ProcessId::new(within),
                groups[g].len(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::{Operation, Response, Value};
    use slx_memory::{FairRandom, SoloScheduler, System};
    use slx_safety::{KSetAgreementSafety, SafetyProperty};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn build(n: usize, k: usize) -> System<ConsWord, ObstructionFreeConsensus> {
        let mut mem: Memory<ConsWord> = Memory::new();
        let procs = grouped_kset(&mut mem, n, k, 64);
        System::new(mem, procs)
    }

    fn decided_values(h: &slx_history::History, n: usize) -> Vec<Value> {
        let mut out = Vec::new();
        for i in 0..n {
            for r in h.responses_of(p(i)) {
                if let Response::Decided(v) = r {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn k_agreement_and_validity_under_random_schedules() {
        for (n, k) in [(4, 2), (6, 3), (5, 2)] {
            for seed in 0..10 {
                let mut sys = build(n, k);
                for i in 0..n {
                    sys.invoke(p(i), Operation::Propose(Value::new(i as i64)))
                        .unwrap();
                }
                sys.run(&mut FairRandom::new(seed), 100_000);
                let h = sys.history();
                assert!(
                    KSetAgreementSafety::new(k).allows(h),
                    "n={n} k={k} seed={seed}"
                );
                let distinct = decided_values(h, n).len();
                assert!(distinct <= k, "n={n} k={k}: {distinct} distinct decisions");
                // Everybody decided under a fair schedule of this length.
                for i in 0..n {
                    assert!(!h.pending(p(i)), "n={n} k={k} seed={seed}: {i} pending");
                }
            }
        }
    }

    #[test]
    fn one_group_is_plain_consensus() {
        let mut sys = build(3, 1);
        for i in 0..3 {
            sys.invoke(p(i), Operation::Propose(Value::new(i as i64 + 1)))
                .unwrap();
        }
        sys.run(&mut FairRandom::new(3), 100_000);
        assert!(KSetAgreementSafety::new(1).allows(sys.history()));
        assert_eq!(decided_values(sys.history(), 3).len(), 1);
    }

    #[test]
    fn n_groups_decide_own_values() {
        // k = n: every group is a singleton; everyone decides its own value.
        let mut sys = build(3, 3);
        for i in 0..3 {
            sys.invoke(p(i), Operation::Propose(Value::new(i as i64 * 7)))
                .unwrap();
        }
        sys.run(&mut FairRandom::new(0), 100_000);
        for i in 0..3 {
            let resp = sys.history().responses_of(p(i));
            assert_eq!(resp, vec![Response::Decided(Value::new(i as i64 * 7))]);
        }
    }

    #[test]
    fn groupwise_solo_runner_decides() {
        // Group-wise obstruction-freedom: p1 (group 0) runs alone and
        // decides even though p2 (group 1) never moves.
        let mut sys = build(4, 2);
        sys.invoke(p(0), Operation::Propose(Value::new(5))).unwrap();
        sys.invoke(p(1), Operation::Propose(Value::new(6))).unwrap();
        sys.run(&mut SoloScheduler::new(p(0)), 10_000);
        assert_eq!(
            sys.history().responses_of(p(0)),
            vec![Response::Decided(Value::new(5))]
        );
        assert!(sys.history().pending(p(1)));
    }

    #[test]
    #[should_panic(expected = "1 <= k <= n")]
    fn invalid_k_panics() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let _ = grouped_kset(&mut mem, 2, 3, 8);
    }
}
