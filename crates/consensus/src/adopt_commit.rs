//! Gafni's commit-adopt object from registers, as a resumable sub-machine.

use slx_engine::{DeltaCodec, DeltaCtx, StateCodec};
use slx_history::Value;
use slx_memory::{Memory, ObjId, PrimOutcome, Primitive};

use crate::word::ConsWord;

/// [`AdoptCommit::normalized_state`]'s projection: program counter
/// (discriminant, collect index), participant index, input, and the
/// collected flags — everything except the `ObjId`s.
pub type AcNormalizedState = (
    (u8, usize),
    usize,
    Value,
    bool,
    Option<Value>,
    bool,
    bool,
    Option<Value>,
);

/// Outcome of a commit-adopt round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcOutcome {
    /// Everyone that finishes this object will leave with this value.
    Commit(Value),
    /// Keep going with this (possibly changed) estimate.
    Adopt(Value),
}

impl AcOutcome {
    /// The carried value.
    pub fn value(self) -> Value {
        match self {
            AcOutcome::Commit(v) | AcOutcome::Adopt(v) => v,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Pc {
    WriteA,
    CollectA(usize),
    WriteB,
    CollectB(usize),
}

/// A single-use **commit-adopt** object implemented from `2n` registers,
/// executed one primitive per [`AdoptCommit::step`] call.
///
/// Guarantees (all exercised by the tests):
///
/// 1. *Validity*: the outcome value was some participant's input.
/// 2. *Convergence*: if all participants input the same value, everyone
///    commits it.
/// 3. *Coherence*: if anyone commits `v`, everyone commits or adopts `v`.
///
/// The object is wait-free: a participant finishes in exactly `2n + 2`
/// primitives regardless of scheduling.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AdoptCommit {
    a: Vec<ObjId>,
    b: Vec<ObjId>,
    me: usize,
    input: Value,
    pc: Pc,
    all_a_equal: bool,
    committed_seen: Option<Value>,
    all_b_commit: bool,
    any_b: bool,
    min_b_seen: Option<Value>,
}

impl AdoptCommit {
    /// Allocates the shared registers for one commit-adopt object shared by
    /// `n` processes. Call once; hand the returned ids to every
    /// participant.
    pub fn alloc(mem: &mut Memory<ConsWord>, n: usize) -> (Vec<ObjId>, Vec<ObjId>) {
        let a = (0..n).map(|_| mem.alloc_register(ConsWord::Bot)).collect();
        let b = (0..n).map(|_| mem.alloc_register(ConsWord::Bot)).collect();
        (a, b)
    }

    /// Starts participation of process index `me` with input `input`.
    pub fn new(a: Vec<ObjId>, b: Vec<ObjId>, me: usize, input: Value) -> Self {
        assert_eq!(a.len(), b.len(), "register arrays must have equal length");
        assert!(me < a.len(), "participant index out of range");
        AdoptCommit {
            a,
            b,
            me,
            input,
            pc: Pc::WriteA,
            all_a_equal: true,
            committed_seen: None,
            all_b_commit: true,
            any_b: false,
            min_b_seen: None,
        }
    }

    /// The participant's state with the shared-register identities
    /// erased: program counter, input, and every collected flag — all
    /// that determines future behaviour *given the registers' contents*.
    ///
    /// Round-shift normalization needs this projection because a process
    /// re-running commit-adopt at a later round holds different `ObjId`s
    /// even when its behaviour is identical; see
    /// [`crate::round_shift_key`].
    #[must_use]
    pub fn normalized_state(&self) -> AcNormalizedState {
        let pc = match self.pc {
            Pc::WriteA => (0, 0),
            Pc::CollectA(j) => (1, j),
            Pc::WriteB => (2, 0),
            Pc::CollectB(j) => (3, j),
        };
        (
            pc,
            self.me,
            self.input,
            self.all_a_equal,
            self.committed_seen,
            self.all_b_commit,
            self.any_b,
            self.min_b_seen,
        )
    }

    /// A copy of this participant re-indexed to `me` (same registers,
    /// same progress): participant identity only selects which column
    /// the sub-machine writes, which is exactly what a process
    /// permutation moves. Used by the symmetry property suites via
    /// [`crate::permuted_of_system`].
    ///
    /// # Panics
    /// If `me` is out of range for the register arrays.
    #[must_use]
    pub fn retargeted(&self, me: usize) -> Self {
        assert!(me < self.a.len(), "participant index out of range");
        AdoptCommit { me, ..self.clone() }
    }

    fn read(&self, mem: &mut Memory<ConsWord>, obj: ObjId) -> ConsWord {
        match mem.apply(Primitive::Read(obj)).expect("register allocated") {
            PrimOutcome::Value(w) => w,
            _ => unreachable!("registers return values"),
        }
    }

    /// Performs one primitive. Returns `Some(outcome)` when finished.
    pub fn step(&mut self, mem: &mut Memory<ConsWord>) -> Option<AcOutcome> {
        let n = self.a.len();
        match self.pc {
            Pc::WriteA => {
                mem.apply(Primitive::Write(self.a[self.me], ConsWord::Val(self.input)))
                    .expect("register allocated");
                self.pc = Pc::CollectA(0);
                None
            }
            Pc::CollectA(j) => {
                let w = self.read(mem, self.a[j]);
                if let Some(v) = w.value() {
                    if v != self.input {
                        self.all_a_equal = false;
                    }
                }
                self.pc = if j + 1 < n {
                    Pc::CollectA(j + 1)
                } else {
                    Pc::WriteB
                };
                None
            }
            Pc::WriteB => {
                let entry = ConsWord::Flagged(self.all_a_equal, self.input);
                mem.apply(Primitive::Write(self.b[self.me], entry))
                    .expect("register allocated");
                self.pc = Pc::CollectB(0);
                None
            }
            Pc::CollectB(j) => {
                let w = self.read(mem, self.b[j]);
                if let ConsWord::Flagged(flag, v) = w {
                    self.any_b = true;
                    self.min_b_seen = Some(match self.min_b_seen {
                        Some(m) if m <= v => m,
                        _ => v,
                    });
                    if flag {
                        self.committed_seen = Some(v);
                    } else {
                        self.all_b_commit = false;
                    }
                }
                if j + 1 < n {
                    self.pc = Pc::CollectB(j + 1);
                    return None;
                }
                // Finished the B collect: compute the outcome. With no
                // commit in sight, adopt the *minimum* value seen, so that
                // symmetric (e.g. lockstep) schedules converge to a common
                // estimate instead of livelocking. Validity is preserved —
                // every seen value is some participant's input.
                Some(
                    match (self.all_b_commit && self.any_b, self.committed_seen) {
                        (true, Some(v)) => AcOutcome::Commit(v),
                        (_, Some(v)) => AcOutcome::Adopt(v),
                        (_, None) => AcOutcome::Adopt(self.min_b_seen.unwrap_or(self.input)),
                    },
                )
            }
        }
    }
}

impl StateCodec for AdoptCommit {
    fn encode(&self, out: &mut Vec<u8>) {
        // Register arrays are allocated as consecutive runs; collapse
        // them (see `slx_memory::encode_objid_run`).
        slx_memory::encode_objid_run(&self.a, out);
        slx_memory::encode_objid_run(&self.b, out);
        self.encode_locals(out);
    }

    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        let a = slx_memory::decode_objid_run(bytes)?;
        let b = slx_memory::decode_objid_run(bytes)?;
        AdoptCommit::decode_locals(a, b, bytes)
    }
}

impl AdoptCommit {
    /// Encodes everything but the register arrays — the shared tail of
    /// both the self-contained and the delta encodings.
    fn encode_locals(&self, out: &mut Vec<u8>) {
        self.me.encode(out);
        self.input.encode(out);
        match self.pc {
            Pc::WriteA => out.push(0),
            Pc::CollectA(j) => {
                out.push(1);
                j.encode(out);
            }
            Pc::WriteB => out.push(2),
            Pc::CollectB(j) => {
                out.push(3);
                j.encode(out);
            }
        }
        self.all_a_equal.encode(out);
        self.committed_seen.encode(out);
        self.all_b_commit.encode(out);
        self.any_b.encode(out);
        self.min_b_seen.encode(out);
    }

    fn decode_locals(a: Vec<ObjId>, b: Vec<ObjId>, bytes: &mut &[u8]) -> Option<AdoptCommit> {
        let me = usize::decode(bytes)?;
        let input = Value::decode(bytes)?;
        let pc = match u8::decode(bytes)? {
            0 => Pc::WriteA,
            1 => Pc::CollectA(usize::decode(bytes)?),
            2 => Pc::WriteB,
            3 => Pc::CollectB(usize::decode(bytes)?),
            _ => return None,
        };
        Some(AdoptCommit {
            a,
            b,
            me,
            input,
            pc,
            all_a_equal: bool::decode(bytes)?,
            committed_seen: Option::decode(bytes)?,
            all_b_commit: bool::decode(bytes)?,
            any_b: bool::decode(bytes)?,
            min_b_seen: Option::decode(bytes)?,
        })
    }
}

impl DeltaCodec for AdoptCommit {
    /// A process stays inside one commit-adopt object for `2n + 2`
    /// consecutive steps, so a sibling's sub-machine almost always holds
    /// the *same* register arrays: those collapse to one marker byte and
    /// only the few-byte local fields re-encode.
    fn encode_delta(&self, prev: Option<&Self>, out: &mut Vec<u8>) {
        let Some(prev) = prev else {
            return self.encode(out);
        };
        let same_regs = self.a == prev.a && self.b == prev.b;
        out.push(u8::from(same_regs));
        if !same_regs {
            slx_memory::encode_objid_run(&self.a, out);
            slx_memory::encode_objid_run(&self.b, out);
        }
        self.encode_locals(out);
    }

    fn decode_delta(prev: Option<&Self>, input: &mut &[u8], _ctx: &mut DeltaCtx) -> Option<Self> {
        let Some(prev) = prev else {
            return Self::decode(input);
        };
        let (a, b) = match u8::decode(input)? {
            1 => (prev.a.clone(), prev.b.clone()),
            0 => (
                slx_memory::decode_objid_run(input)?,
                slx_memory::decode_objid_run(input)?,
            ),
            _ => return None,
        };
        AdoptCommit::decode_locals(a, b, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: i64) -> Value {
        Value::new(x)
    }

    fn run_solo(ac: &mut AdoptCommit, mem: &mut Memory<ConsWord>) -> AcOutcome {
        loop {
            if let Some(out) = ac.step(mem) {
                return out;
            }
        }
    }

    /// Runs participants under an arbitrary interleaving given by a
    /// schedule of participant indices; returns outcomes in participant
    /// order.
    fn run_schedule(inputs: &[i64], schedule: impl IntoIterator<Item = usize>) -> Vec<AcOutcome> {
        let n = inputs.len();
        let mut mem: Memory<ConsWord> = Memory::new();
        let (a, b) = AdoptCommit::alloc(&mut mem, n);
        let mut parts: Vec<AdoptCommit> = inputs
            .iter()
            .enumerate()
            .map(|(i, &x)| AdoptCommit::new(a.clone(), b.clone(), i, v(x)))
            .collect();
        let mut outcomes: Vec<Option<AcOutcome>> = vec![None; n];
        for i in schedule {
            if outcomes[i].is_none() {
                outcomes[i] = parts[i].step(&mut mem);
            }
        }
        // Finish everyone solo.
        for i in 0..n {
            if outcomes[i].is_none() {
                outcomes[i] = Some(run_solo(&mut parts[i], &mut mem));
            }
        }
        outcomes.into_iter().map(Option::unwrap).collect()
    }

    #[test]
    fn solo_participant_commits_own_value() {
        let out = run_schedule(&[7], std::iter::empty());
        assert_eq!(out, vec![AcOutcome::Commit(v(7))]);
    }

    #[test]
    fn convergence_same_inputs_all_commit() {
        for n in 2..=4 {
            let inputs = vec![5; n];
            let out = run_schedule(&inputs, std::iter::empty());
            assert!(out.iter().all(|o| *o == AcOutcome::Commit(v(5))), "{out:?}");
        }
    }

    #[test]
    fn coherence_under_exhaustive_two_process_interleavings() {
        // Exhaustively interleave two participants (each needs 6 steps:
        // writeA, 2 collectA, writeB, 2 collectB). Check validity,
        // coherence and the at-most-one-committed-value property.
        let total = 12usize;
        for mask in 0u32..(1 << total) {
            if mask.count_ones() != 6 {
                continue;
            }
            let schedule: Vec<usize> = (0..total)
                .map(|i| usize::from(mask & (1 << i) != 0))
                .collect();
            let out = run_schedule(&[1, 2], schedule);
            // Validity.
            for o in &out {
                assert!(o.value() == v(1) || o.value() == v(2), "{out:?}");
            }
            // Coherence: a commit forces the other's value.
            match (out[0], out[1]) {
                (AcOutcome::Commit(a), other) => assert_eq!(other.value(), a, "{out:?}"),
                (other, AcOutcome::Commit(b)) => assert_eq!(other.value(), b, "{out:?}"),
                _ => {}
            }
        }
    }

    #[test]
    fn wait_free_step_count() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let (a, b) = AdoptCommit::alloc(&mut mem, 3);
        let mut ac = AdoptCommit::new(a, b, 0, v(9));
        let mut steps = 0;
        while ac.step(&mut mem).is_none() {
            steps += 1;
        }
        // 1 writeA + 3 collectA + 1 writeB + 3 collectB = 8 primitives, the
        // last collectB step returns the outcome (so 7 None steps).
        assert_eq!(steps, 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let (a, b) = AdoptCommit::alloc(&mut mem, 2);
        let _ = AdoptCommit::new(a, b, 5, v(0));
    }
}
