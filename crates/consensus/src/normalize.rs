//! Configuration normalization for [`ObstructionFreeConsensus`]: the
//! round-shift key (cycle detection) and the shift+permutation canonical
//! digest (symmetry reduction).
//!
//! The algorithm treats every commit-adopt round identically and never
//! revisits rounds below every climbing process's current one, so
//! behaviour is invariant under a uniform **round shift** — the
//! consensus-side analogue of `slx_tm::normalize`. It is also symmetric
//! under **process permutation**: participant identity only selects which
//! register column a process writes, so permuting the processes together
//! with their columns yields a behaviourally equivalent configuration.
//! [`round_shift_key`] exploits the first symmetry (it keys the
//! bivalence-adversary lasso in `slx-adversary`); [`canonical_of_digest`]
//! composes both and backs the exploration kernel's symmetry reduction.

use slx_engine::DetHashMap;
use std::hash::{Hash, Hasher};

use slx_engine::{Digest, Fingerprinter};
use slx_history::ProcessId;
use slx_memory::{BaseObject, ObjId, System};

use crate::of_consensus::{ObstructionFreeConsensus, OfNormalizedState};
use crate::word::ConsWord;

/// The round-shift-normalized cycle-detection key of
/// [`round_shift_key`]: per-process normalized states, the live register
/// window, and the decision register.
pub type OfRoundShiftKey = (Vec<OfNormalizedState>, Vec<ConsWord>, ConsWord);

/// Per-process view the key/digest functions share: pending flag, crashed
/// flag, and the process state.
fn proc_views(
    sys: &System<ConsWord, ObstructionFreeConsensus>,
) -> Vec<(bool, bool, &ObstructionFreeConsensus)> {
    (0..sys.n())
        .map(|i| {
            let p = ProcessId::new(i);
            (
                sys.is_pending(p),
                sys.is_crashed(p),
                sys.process(p).expect("process exists"),
            )
        })
        .collect()
}

/// The live round window: `base` = the minimum current round over the
/// **pending** processes (a process that never proposed idles at round 0
/// forever and must not pin the base; a responded process never steps
/// again and must not either), `top` = the maximum current round over
/// **all** processes (a responded process may have written rounds above
/// every pending process's round, and a climbing process will read them —
/// in the adversary's never-responding executions this coincides with the
/// pending maximum). Rounds above `top` are untouched, rounds below
/// `base` are dead: no process will ever read them again.
fn window_bounds(procs: &[(bool, bool, &ObstructionFreeConsensus)]) -> (usize, usize) {
    let base = procs
        .iter()
        .filter(|(pending, _, _)| *pending)
        .map(|(_, _, q)| q.round())
        .min()
        .unwrap_or(0);
    let top = procs.iter().map(|(_, _, q)| q.round()).max().unwrap_or(0);
    (base, top)
}

/// Reads a register's contents straight from the object table
/// (non-registers and unallocated ids read as `⊥`, a register's
/// allocation value).
fn read_register(sys: &System<ConsWord, ObstructionFreeConsensus>, id: ObjId) -> ConsWord {
    match sys.memory().object(id) {
        Some(BaseObject::Register(w)) => *w,
        _ => ConsWord::Bot,
    }
}

/// The round-shift-normalized cycle-detection key for an
/// [`ObstructionFreeConsensus`] system — the consensus-side analogue of
/// `slx_tm::normalize::normalized_global_version`.
///
/// Raw configurations never repeat under the bivalence adversary:
/// processes adopt forever and climb through fresh commit-adopt rounds,
/// so the round index and the touched register set grow without bound.
/// But behaviour is invariant under a uniform round shift, so the key
/// contains, with `base`/`top` the live round window (see the module
/// docs):
///
/// - each process's [`ObstructionFreeConsensus::normalized_state`]
///   rebased by `base` (register identities erased); non-pending
///   processes are frozen and enter rebased to their own round,
/// - the contents of the commit-adopt registers of rounds `base..=top`,
/// - and the decision register.
///
/// A repeat of this key (joined with any scheduler state, e.g. the
/// adversary's normalized step counts) witnesses a genuine infinite
/// execution, provided no new invocations arrive — a re-invoked process
/// would re-enter round 0 below `base` — and the layout has round
/// headroom left (the detector's run would panic on exhaustion rather
/// than mis-report).
#[must_use]
pub fn round_shift_key(sys: &System<ConsWord, ObstructionFreeConsensus>) -> OfRoundShiftKey {
    let procs = proc_views(sys);
    let (base, top) = window_bounds(&procs);
    let read = |id: ObjId| read_register(sys, id);

    let layout = procs
        .first()
        .expect("at least one process")
        .2
        .shared_layout();
    let mut window: Vec<ConsWord> = Vec::new();
    for r in base..=top {
        if let Some((a, b)) = layout.round_registers(r) {
            window.extend(a.iter().chain(b).map(|&id| read(id)));
        }
    }

    (
        procs
            .iter()
            .map(|(pending, _, q)| {
                // Non-pending processes are frozen at their own round:
                // rebase to it (their round may sit below `base`, which
                // would underflow — and they must not perturb the
                // shifted key).
                let rebase = if *pending { base } else { q.round() };
                q.normalized_state(rebase)
            })
            .collect(),
        window,
        read(layout.decision()),
    )
}

/// The canonical symmetry digest for an [`ObstructionFreeConsensus`]
/// system: invariant under uniform round shifts *and* — on
/// permutation-safe configurations — process permutations, while erasing
/// the step/round counters exact digests mix in. Backs
/// `Process::canonical_system_digest` for the exploration kernel's
/// symmetry reduction.
///
/// **Permutation safety.** A pending, uncrashed process whose in-round
/// sub-machine is mid-collect (`CollectA(j)`/`CollectB(j)` with `j > 0`)
/// has read a concrete index-prefix of a register array; permuting the
/// processes moves the columns it has yet to read, which is *not* a
/// behaviour-preserving map. Such configurations fall back to the
/// round-shift-only key in process-index order (a distinct digest domain,
/// tagged). At every other program counter the remaining collects cover
/// whole arrays through order-insensitive aggregates (all-equal, any,
/// min, the at-most-one-flagged-value commit), so sorting the
/// per-process signatures quotients the permutation orbit without
/// changing any safety/valence/progress verdict — the symmetry
/// differential suites pin exactly that.
///
/// The per-process signature is (pending, crashed, `me`-erased
/// normalized state, own register columns of the live window); shared
/// state enters as the decision register. The `rounds_used` and
/// primitive-application counters are deliberately absent — like
/// history, they never influence future behaviour — which collapses
/// states that differ only in how they were scheduled.
#[must_use]
pub fn canonical_of_digest(sys: &System<ConsWord, ObstructionFreeConsensus>) -> Digest {
    // This runs once per *generated* state on the kernel's hot path, so
    // it reads registers straight out of the object table (an O(1)
    // index) and hashes per-process signatures in place — no maps, one
    // small `sigs` vector.
    let read = |id: ObjId| read_register(sys, id);
    let procs = proc_views(sys);
    let (base, top) = window_bounds(&procs);
    let layout = procs
        .first()
        .expect("at least one process")
        .2
        .shared_layout();

    let perm_safe = permutation_safe(sys);

    let mut sigs: Vec<u128> = procs
        .iter()
        .enumerate()
        .map(|(i, (pending, crashed, q))| {
            let rebase = if *pending { base } else { q.round() };
            let mut st: OfNormalizedState = q.normalized_state(rebase);
            if let Some(ac) = st.2 .1.as_mut() {
                // Erase the participant index: under a permutation it is
                // the process's slot, which the sorted form forgets.
                ac.1 = 0;
            }
            let mut h = Fingerprinter::new();
            (*pending, *crashed, st).hash(&mut h);
            // Process `i` owns column `i` of every round's `a` and `b`
            // arrays; its window columns travel with it under a
            // permutation.
            for r in base..=top {
                match layout.round_registers(r) {
                    Some((a, b)) => (read(a[i]), read(b[i])).hash(&mut h),
                    None => (ConsWord::Bot, ConsWord::Bot).hash(&mut h),
                }
            }
            h.digest().0
        })
        .collect();
    if perm_safe {
        sigs.sort_unstable();
    }

    let mut fp = Fingerprinter::new();
    fp.write_u8(u8::from(perm_safe));
    fp.write_usize(sys.n());
    fp.write_usize(top - base);
    for sig in &sigs {
        fp.write_u128(*sig);
    }
    read(layout.decision()).hash(&mut fp);
    fp.digest()
}

/// Whether a configuration is **permutation-safe**: no pending, uncrashed
/// process is mid-collect (`CollectA(j)`/`CollectB(j)` with `j > 0`).
/// Collects walk the register arrays in fixed index order, so only at
/// collect boundaries is the per-process state insensitive to column
/// order — exactly there [`canonical_of_digest`] sorts the per-process
/// signatures, and [`permuted_of_system`] images share the canonical
/// digest. The symmetry property suite uses this predicate to pick its
/// checkpoints.
#[must_use]
pub fn permutation_safe(sys: &System<ConsWord, ObstructionFreeConsensus>) -> bool {
    (0..sys.n()).all(|i| {
        let id = ProcessId::new(i);
        // Crashed processes never step again, so a stale collect prefix
        // is inert; idle/decided processes are not mid-collect at all.
        let q = sys.process(id).expect("process exists");
        let st = q.normalized_state(q.round());
        !sys.is_pending(id)
            || sys.is_crashed(id)
            || !matches!(st.2 .1, Some(((1 | 3, j), ..)) if j > 0)
    })
}

/// The π-image of a configuration: process `i` moves to slot `perm[i]`
/// (its state retargeted via
/// [`ObstructionFreeConsensus::retargeted`]) and every commit-adopt
/// register column moves with its owner, while the decision register
/// stays put. History and events are dropped.
///
/// This is the concrete permutation action [`canonical_of_digest`]
/// quotients by; the symmetry property suites build images with it and
/// assert digest invariance.
///
/// # Panics
/// If `perm` is not a permutation of `0..n` or the system is empty.
#[must_use]
pub fn permuted_of_system(
    sys: &System<ConsWord, ObstructionFreeConsensus>,
    perm: &[usize],
) -> System<ConsWord, ObstructionFreeConsensus> {
    let layout = sys
        .process(ProcessId::new(0))
        .expect("at least one process")
        .shared_layout()
        .clone();
    let n = perm.len();
    let mut inverse = vec![usize::MAX; n];
    for (i, &target) in perm.iter().enumerate() {
        inverse[target] = i;
    }
    // Column `j` of every round receives the contents of column
    // `perm⁻¹(j)` — the register that belonged to the process now sitting
    // in slot `j`.
    let mut source: DetHashMap<usize, ObjId> = DetHashMap::default();
    for r in 0..layout.max_rounds() {
        let (a, b) = layout.round_registers(r).expect("round in range");
        for j in 0..n {
            source.insert(a[j].index(), a[inverse[j]]);
            source.insert(b[j].index(), b[inverse[j]]);
        }
    }
    sys.permuted(
        perm,
        |i, p| p.retargeted(ProcessId::new(perm[i])),
        |id, obj| match source.get(&id.index()) {
            Some(&src) => sys
                .memory()
                .object(src)
                .expect("register allocated")
                .clone(),
            None => obj.clone(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::{Operation, Value};
    use slx_memory::Memory;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }

    fn proposed_system(n: usize) -> System<ConsWord, ObstructionFreeConsensus> {
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, n, 16);
        let procs = (0..n)
            .map(|i| ObstructionFreeConsensus::new(layout.clone(), p(i), n))
            .collect();
        let mut sys = System::new(mem, procs);
        for i in 0..n {
            sys.invoke(p(i), Operation::Propose(v(i as i64 + 1)))
                .unwrap();
        }
        sys
    }

    #[test]
    fn round_shift_identifies_adversarial_laps() {
        // A bivalence-preserving schedule: both write A and collect both
        // A entries (each sees disagreement, so neither commits), then
        // p1 writes and collects B *before p0 writes B* — p1's collect
        // skips p0's unwritten `⊥` entry, sees only its own value and
        // adopts it, while p0 later sees both and adopts the minimum
        // (its own). Estimates stay {1, 2}, both climb one round per
        // lap, forever. Lap boundaries are raw-distinct (fresh rounds)
        // but identical modulo the round shift.
        let mut sys = proposed_system(2);
        let lap = |sys: &mut System<ConsWord, ObstructionFreeConsensus>| {
            for i in [0, 1, 0, 1, 0, 0, 1, 1, 1, 1, 1, 0, 0, 0] {
                sys.step(p(i)).unwrap();
            }
        };
        let start = round_shift_key(&sys);
        let start_canon = canonical_of_digest(&sys);
        let mut raw = vec![sys.digest128()];
        for _ in 0..3 {
            lap(&mut sys);
            assert_eq!(round_shift_key(&sys), start, "laps differ only by shift");
            assert_eq!(canonical_of_digest(&sys), start_canon);
            raw.push(sys.digest128());
            assert!(
                raw.iter().filter(|&&d| d == *raw.last().unwrap()).count() == 1,
                "raw configurations must stay distinct (rounds climb)"
            );
        }
    }

    #[test]
    fn canonical_digest_is_permutation_invariant_at_safe_states() {
        // Drive an asymmetric schedule to a permutation-safe state: p0
        // writes A and is about to collect index 0; p1 still at
        // CheckDecision.
        let mut sys = proposed_system(2);
        sys.step(p(0)).unwrap(); // CheckDecision -> Round(WriteA)
        sys.step(p(0)).unwrap(); // WriteA -> CollectA(0)
        let image = permuted_of_system(&sys, &[1, 0]);
        assert_ne!(
            sys.digest128(),
            image.digest128(),
            "the image is a genuinely different configuration"
        );
        assert_eq!(canonical_of_digest(&sys), canonical_of_digest(&image));
    }

    #[test]
    fn mid_collect_states_fall_back_without_colliding() {
        // Step p0 to CollectA(1) (mid-collect, j > 0): the canonical
        // digest must come from the tagged fallback domain and still
        // distinguish genuinely different mid-collect states.
        let mut sys = proposed_system(2);
        for _ in 0..3 {
            sys.step(p(0)).unwrap(); // CheckDecision, WriteA, CollectA(0)->read
        }
        let mut other = proposed_system(2);
        for _ in 0..3 {
            other.step(p(1)).unwrap();
        }
        // p0 mid-collect vs p1 mid-collect are *not* identified while
        // collects are positional.
        assert_ne!(canonical_of_digest(&sys), canonical_of_digest(&other));
    }

    #[test]
    fn permuted_system_steps_like_the_original() {
        // Behavioural spot check of the permutation action: stepping
        // π(i) in the image tracks stepping i in the original, with
        // canonical digests agreeing at every permutation-safe
        // checkpoint. (Exact state equality does *not* commute with
        // steps mid-collect — the collect walks indices in a fixed
        // order, so a permutation changes which columns a half-done
        // collect has consumed. That is exactly why mid-collect states
        // are gated out of the sorted form; between checkpoints the
        // order-insensitive aggregates reconverge.)
        let mut sys = proposed_system(3);
        sys.step(p(0)).unwrap(); // CheckDecision -> open round
        sys.step(p(0)).unwrap(); // WriteA: p0's value visible at a[0]
        sys.step(p(2)).unwrap(); // CheckDecision -> open round
        let perm = [2usize, 0, 1];
        let mut image = permuted_of_system(&sys, &perm);
        let mut orig = sys.clone();
        assert_eq!(canonical_of_digest(&orig), canonical_of_digest(&image));
        // Drive p1 through one full commit-adopt round (9 steps for
        // n = 3). Safe checkpoints: after opening the round (1), after
        // WriteA (2), after the full A collect (5), after WriteB (6)
        // and after the full B collect resolves the round (9).
        for s in 1..=9 {
            orig.step(p(1)).unwrap();
            image.step(p(perm[1])).unwrap();
            if matches!(s, 1 | 2 | 5 | 6 | 9) {
                assert_eq!(
                    canonical_of_digest(&orig),
                    canonical_of_digest(&image),
                    "checkpoint after step {s}"
                );
            }
        }
    }
}
