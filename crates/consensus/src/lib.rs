//! Consensus implementations over simulated shared memory.
//!
//! The paper's consensus corollaries (4.5, 4.10, Theorem 5.2 / Figure 1a)
//! quantify over implementations *from read/write registers*. This crate
//! provides:
//!
//! - [`AdoptCommit`] — Gafni's commit-adopt object from registers
//!   (wait-free, single-use), the building block;
//! - [`ObstructionFreeConsensus`] — rounds of adopt-commit plus a decision
//!   register: a register-only consensus that is (1,1)-free
//!   (obstruction-free) and ensures agreement and validity. This is the
//!   witness for the *white* point (1,1) in Figure 1a;
//! - [`CasConsensus`] — wait-free consensus from a single compare-and-swap
//!   object: the contrast showing the exclusion is about the base-object
//!   model, not consensus per se;
//! - [`TrivialNoResponse`] and [`SingleResponse`] — process-level versions
//!   of Theorem 4.9's `It` and `Ib` (the automata-level versions live in
//!   `slx-automata`), usable inside the simulator.

#![warn(missing_docs)]

mod adopt_commit;
mod cas_consensus;
mod kset;
mod normalize;
mod of_consensus;
mod trivial;
mod word;

pub use adopt_commit::{AcNormalizedState, AcOutcome, AdoptCommit};
pub use cas_consensus::CasConsensus;
pub use kset::grouped_kset;
pub use normalize::{
    canonical_of_digest, permutation_safe, permuted_of_system, round_shift_key, OfRoundShiftKey,
};
pub use of_consensus::{Layout as OfLayout, ObstructionFreeConsensus, OfNormalizedState};
pub use trivial::{SingleResponse, TrivialNoResponse};
pub use word::ConsWord;
