//! End-to-end gate tests: drive the analyzer over on-disk fixture trees
//! that mirror the real workspace layout (`crates/engine/src/knobs.rs`,
//! `checkpoint.rs`, `crates/server/src/wire.rs`, a codec-bearing type),
//! and over the real checkout itself.
//!
//! The fixture scenarios pin the contract the CI gate relies on:
//!
//! - a blessed tree is clean, and `--bless` is idempotent;
//! - mutating a codec struct without a version bump fails naming the
//!   type and the field, and the hint tracks whether the version was
//!   bumped;
//! - an unregistered `SLX_*` literal fails the knob lint;
//! - the CLI exits 0 on a clean tree and 1 with findings.

use std::path::{Path, PathBuf};
use std::process::Command;

use slx_analyze::Workspace;

/// A throwaway fixture checkout under the system temp dir.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    /// Builds the minimal clean tree every scenario starts from.
    fn new(name: &str) -> Fixture {
        let root =
            std::env::temp_dir().join(format!("slx-analyze-gate-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create fixture root");
        let fx = Fixture { root };
        fx.write("Cargo.toml", "[workspace]\n");
        fx.write(
            "crates/engine/src/knobs.rs",
            "pub struct Knob { pub name: &'static str }\n\
             pub static SLX_FIX_THREADS: Knob = Knob { name: \"SLX_FIX_THREADS\" };\n",
        );
        fx.write(
            "crates/engine/src/checker.rs",
            "fn resolve() { crate::knobs::SLX_FIX_THREADS.name; }\n",
        );
        fx.write(
            "crates/engine/src/checkpoint.rs",
            "pub const FORMAT_VERSION: u64 = 1;\n\
             pub struct RunHeader { pub shards: usize, pub symmetry: bool }\n\
             fn encode_image() { write_header(); }\n",
        );
        fx.write(
            "crates/engine/src/codec.rs",
            "pub struct Image { pub states: Vec<u8>, pub depth: u64 }\n\
             impl StateCodec for Image { fn encode(&self) { enc(); } }\n",
        );
        fx.write(
            "crates/server/src/wire.rs",
            "pub const PROTOCOL_VERSION: u8 = 1;\n\
             pub enum Frame { Submit(Req), Cancel { id: String } }\n\
             pub struct Req { pub id: String, pub depth: u64 }\n\
             impl StateCodec for Req { fn encode(&self) { enc(); } }\n",
        );
        fx.write("EXPERIMENTS.md", "| `SLX_FIX_THREADS` | fixture knob |\n");
        fx
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("rel paths have parents")).expect("mkdir");
        std::fs::write(path, content).expect("write fixture file");
    }

    fn load(&self) -> Workspace {
        Workspace::load(&self.root).expect("load fixture workspace")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn blessed_fixture_is_clean_and_bless_is_idempotent() {
    let fx = Fixture::new("clean");
    let ws = fx.load();
    assert!(
        !ws.run_all().is_empty(),
        "unblessed tree must report the missing manifest"
    );
    ws.bless().expect("bless");
    let first = std::fs::read_to_string(fx.root.join("WIRE_MANIFEST.txt")).expect("manifest");
    assert!(
        ws.run_all().is_empty(),
        "blessed tree must be clean: {:?}",
        ws.run_all()
    );

    // Round-trip: a second bless must rewrite byte-identical text.
    ws.bless().expect("re-bless");
    let second = std::fs::read_to_string(fx.root.join("WIRE_MANIFEST.txt")).expect("manifest");
    assert_eq!(first, second);
}

#[test]
fn mutated_codec_struct_fails_naming_type_and_field() {
    let fx = Fixture::new("drift");
    fx.load().bless().expect("bless");

    // Widen a persisted field without touching FORMAT_VERSION.
    fx.write(
        "crates/engine/src/codec.rs",
        "pub struct Image { pub states: Vec<u8>, pub depth: u32 }\n\
         impl StateCodec for Image { fn encode(&self) { enc(); } }\n",
    );
    let findings = fx.load().run_all();
    let msg = findings
        .iter()
        .find(|f| f.file == "crates/engine/src/codec.rs")
        .unwrap_or_else(|| panic!("expected a wire-schema finding: {findings:?}"))
        .message
        .clone();
    assert!(msg.contains("Image"), "names the type: {msg}");
    assert!(msg.contains("depth"), "names the field: {msg}");
    assert!(
        msg.contains("FORMAT_VERSION"),
        "points at the version const: {msg}"
    );

    // Bumping the version alone is not enough — the hint flips to
    // demanding an explicit --bless acknowledgment.
    fx.write(
        "crates/engine/src/checkpoint.rs",
        "pub const FORMAT_VERSION: u64 = 2;\n\
         pub struct RunHeader { pub shards: usize, pub symmetry: bool }\n\
         fn encode_image() { write_header(); }\n",
    );
    let findings = fx.load().run_all();
    assert!(
        findings.iter().any(|f| f.message.contains("--bless")),
        "bumped version still demands bless: {findings:?}"
    );

    // Bless acknowledges the audited change; the tree is clean again.
    let ws = fx.load();
    ws.bless().expect("bless after bump");
    assert!(ws.run_all().is_empty(), "{:?}", ws.run_all());
}

#[test]
fn unregistered_slx_literal_fails_the_knob_lint() {
    let fx = Fixture::new("rogue");
    fx.load().bless().expect("bless");
    fx.write(
        "crates/engine/src/rogue.rs",
        "fn threads() -> Option<String> { lookup(\"SLX_ROGUE_KNOB\") }\n",
    );
    let findings = fx.load().run_all();
    let hit = findings
        .iter()
        .find(|f| f.message.contains("SLX_ROGUE_KNOB"))
        .unwrap_or_else(|| panic!("expected a knob-registry finding: {findings:?}"));
    assert_eq!(hit.file, "crates/engine/src/rogue.rs");
    assert!(
        hit.message.contains("not in the knob registry"),
        "{}",
        hit.message
    );
}

#[test]
fn cli_exits_zero_on_clean_and_one_on_findings() {
    let fx = Fixture::new("cli");
    let bin = env!("CARGO_BIN_EXE_slx-analyze");

    let status = Command::new(bin)
        .args([
            "--root",
            fx.root.to_str().expect("utf8 temp path"),
            "--bless",
        ])
        .status()
        .expect("run slx-analyze --bless");
    assert!(
        status.success(),
        "blessed fixture run must exit 0: {status}"
    );

    fx.write(
        "crates/engine/src/rogue.rs",
        "fn threads() -> Option<String> { lookup(\"SLX_ROGUE_KNOB\") }\n",
    );
    let status = Command::new(bin)
        .args(["--root", fx.root.to_str().expect("utf8 temp path")])
        .status()
        .expect("run slx-analyze");
    assert_eq!(status.code(), Some(1), "findings must exit 1");
}

#[test]
fn the_real_checkout_is_clean() {
    // The analyzer gates this very repository: the checked-in
    // WIRE_MANIFEST.txt, the knob registry, the docs table, and every
    // lint must agree on the sources as committed.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels below the root")
        .to_path_buf();
    let ws = Workspace::load(&root).expect("load real workspace");
    let findings = ws.run_all();
    assert!(
        findings.is_empty(),
        "the checked-in tree must pass its own gate:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
