//! `slx-analyze` — repo-aware static analysis, run as a tier-1 CI gate.
//!
//! The compiler verifies memory safety and types; this crate verifies
//! the *repo-level* invariants every PR so far has relied on prose and
//! discipline to keep:
//!
//! - **Wire-schema drift** ([`manifest`]): the persisted encodings
//!   (checkpoint images, server frames, every `StateCodec`/`DeltaCodec`
//!   impl) are fingerprinted into a checked-in `WIRE_MANIFEST.txt`; any
//!   drift fails the build naming the type and field, with the fix
//!   depending on whether `FORMAT_VERSION`/`PROTOCOL_VERSION` was
//!   bumped. Regeneration (`--bless`) is the explicit acknowledgment.
//! - **Determinism lints** ([`lints`]): no default-hasher containers,
//!   ambient clocks, or ambient env reads outside their sanctioned
//!   modules; `SLX_*` knob literals, the knob registry, and the docs
//!   table agree three ways.
//! - **Concurrency hygiene** ([`concurrency`]): lock primitives only in
//!   audited files, poisoning handled, condvar waits looped, no
//!   durability barriers under locks.
//!
//! Everything is hand-rolled on a lexical source model ([`source`]) —
//! the crate builds offline with zero dependencies, which is what lets
//! CI treat it as a required gate rather than a best-effort extra.
//!
//! Scope: non-test code under `crates/*/src/` and `src/`. Integration
//! tests, benches, and `#[cfg(test)]` items are exempt (tests pin env
//! vars and build throwaway maps on purpose), as is this crate itself
//! (its lint patterns would otherwise flag themselves).

use std::path::{Path, PathBuf};

pub mod concurrency;
pub mod lints;
pub mod manifest;
pub mod scan;
pub mod source;

use source::SourceFile;

/// Analysis labels, used as finding prefixes and in CI output.
pub const ANALYSIS_WIRE: &str = "wire-schema";
/// Determinism lints (hashers, clocks, env reads).
pub const ANALYSIS_DET: &str = "determinism";
/// Knob registry agreement.
pub const ANALYSIS_KNOBS: &str = "knob-registry";
/// Concurrency hygiene.
pub const ANALYSIS_CONC: &str = "concurrency";

/// One verified defect. Rendered as `analysis: file:line: message`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which analysis produced it (one of the `ANALYSIS_*` labels).
    pub analysis: &'static str,
    /// Workspace-relative file.
    pub file: String,
    /// 1-indexed line (1 when the finding is file- or repo-scoped).
    pub line: usize,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.analysis, self.file, self.line, self.message
        )
    }
}

/// The analyzer's view of one workspace checkout.
#[derive(Debug)]
pub struct Workspace {
    /// Checkout root.
    pub root: PathBuf,
    /// Lexed non-generated sources under `crates/*/src/` and `src/`.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads and lexes every `.rs` file under `crates/*/src/` and
    /// `src/`, skipping the analyzer itself.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the roots simply being absent
    /// (reduced fixture trees omit some).
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            crate_dirs.sort();
            for dir in crate_dirs {
                if dir.file_name().is_some_and(|n| n == "analyze") {
                    continue;
                }
                collect_rs(&dir.join("src"), root, &mut files)?;
            }
        }
        collect_rs(&root.join("src"), root, &mut files)?;
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// Runs every analysis, returning the combined findings (empty =
    /// clean tree). The manifest check compares against the checked-in
    /// `WIRE_MANIFEST.txt`; see [`Workspace::bless`] to regenerate it.
    pub fn run_all(&self) -> Vec<Finding> {
        let mut findings = Vec::new();

        match manifest::extract(&self.files) {
            Ok(model) => {
                let stored = std::fs::read_to_string(self.root.join(manifest::MANIFEST_PATH));
                match stored {
                    Ok(stored) => findings.extend(manifest::check(&model, &stored)),
                    Err(_) => findings.push(Finding {
                        analysis: ANALYSIS_WIRE,
                        file: manifest::MANIFEST_PATH.to_string(),
                        line: 1,
                        message:
                            "missing — generate it with `cargo run -p slx-analyze -- --bless` \
                                  and check it in"
                                .to_string(),
                    }),
                }
            }
            Err(finding) => findings.push(finding),
        }

        findings.extend(lints::default_hasher(&self.files));
        findings.extend(lints::wall_clock(&self.files));
        findings.extend(lints::env_reads(&self.files));
        let registry = lints::parse_registry(&self.files);
        let docs = std::fs::read_to_string(self.root.join("EXPERIMENTS.md")).ok();
        findings.extend(lints::knob_agreement(
            &self.files,
            &registry,
            docs.as_deref(),
        ));
        findings.extend(concurrency::audit(&self.files));

        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.analysis).cmp(&(b.file.as_str(), b.line, b.analysis))
        });
        findings
    }

    /// Regenerates `WIRE_MANIFEST.txt` from the current sources.
    ///
    /// # Errors
    ///
    /// Propagates extraction findings (as an error string) and I/O.
    pub fn bless(&self) -> Result<(), String> {
        let model = manifest::extract(&self.files).map_err(|f| f.to_string())?;
        std::fs::write(
            self.root.join(manifest::MANIFEST_PATH),
            manifest::render(&model),
        )
        .map_err(|e| format!("cannot write {}: {e}", manifest::MANIFEST_PATH))
    }
}

/// Recursively collects `.rs` files under `dir` into `files`.
fn collect_rs(dir: &Path, root: &Path, files: &mut Vec<SourceFile>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let raw = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile::parse(&rel, raw));
        }
    }
    Ok(())
}
