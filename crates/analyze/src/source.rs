//! A lexical source model good enough to lint this workspace.
//!
//! The analyzer deliberately avoids a real Rust parser (it must build
//! offline with zero dependencies), so each file is reduced to three
//! views by a small hand-rolled lexer:
//!
//! - [`SourceFile::code`] — the raw text with comments *and string/char
//!   literal contents* blanked to spaces (newlines kept, so offsets and
//!   line numbers survive). Token searches over this view cannot be
//!   fooled by a `"HashMap"` inside a message string or a code sample in
//!   a doc comment.
//! - [`SourceFile::code_nontest`] — `code` with every `#[cfg(test)]`-
//!   gated item additionally blanked: the lints govern shipping code,
//!   not test scaffolding (tests legitimately read env vars and build
//!   throwaway maps).
//! - [`SourceFile::strings`] — every string literal with its line and
//!   byte offset, for the lints that *do* inspect literal contents
//!   (`SLX_*` knob names).
//!
//! The lexer understands line/nested-block comments, regular and raw
//! (byte) strings, char literals vs lifetimes, and escapes. That is the
//! entire Rust surface the blanking needs; anything it misparses shows
//! up immediately as a false positive on the clean tree, which the
//! self-gating test pins to zero.

/// One string literal occurrence.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 1-indexed line of the opening quote.
    pub line: usize,
    /// Byte offset of the opening quote in the file.
    pub offset: usize,
    /// The literal's contents (escapes left as written).
    pub text: String,
}

/// The lexed views of one `.rs` file. See the module docs.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Raw file text.
    pub raw: String,
    /// Comments and literal contents blanked.
    pub code: String,
    /// `code` with `#[cfg(test)]` items additionally blanked.
    pub code_nontest: String,
    /// All string literals, in file order.
    pub strings: Vec<StrLit>,
    /// 1-indexed lines whose raw text carries a `det-lint: allow` marker.
    pub det_allow_lines: Vec<usize>,
}

impl SourceFile {
    /// Lexes `raw` into the blanked views.
    pub fn parse(rel_path: &str, raw: String) -> SourceFile {
        let (code, strings) = blank_comments_and_literals(&raw);
        let code_nontest = blank_cfg_test(&code);
        let det_allow_lines = raw
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains("det-lint: allow"))
            .map(|(i, _)| i + 1)
            .collect();
        SourceFile {
            rel_path: rel_path.to_string(),
            raw,
            code,
            code_nontest,
            strings,
            det_allow_lines,
        }
    }

    /// 1-indexed line of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.raw.as_bytes()[..offset]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            + 1
    }

    /// Whether the string literal at `offset` survives test-blanking
    /// (i.e. sits in shipping code, not under `#[cfg(test)]`).
    pub fn literal_in_nontest(&self, offset: usize) -> bool {
        self.code_nontest.as_bytes().get(offset).copied() == Some(b'"')
    }
}

fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Blanks comments and the contents of string/char literals, preserving
/// newlines and the literal delimiters themselves.
fn blank_comments_and_literals(src: &str) -> (String, Vec<StrLit>) {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut strings = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Push `b` through, tracking lines.
    macro_rules! keep {
        ($b:expr) => {{
            let b = $b;
            if b == b'\n' {
                line += 1;
            }
            out.push(b);
        }};
    }
    // Blank `b`: newlines survive, everything else becomes a space.
    macro_rules! blank {
        ($b:expr) => {{
            let b = $b;
            if b == b'\n' {
                line += 1;
                out.push(b'\n');
            } else {
                out.push(b' ');
            }
        }};
    }

    while i < bytes.len() {
        let b = bytes[i];
        // Line comment (also doc comments).
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                blank!(bytes[i]);
                i += 1;
            }
            continue;
        }
        // Block comment, nesting tracked.
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    blank!(bytes[i]);
                    blank!(bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    blank!(bytes[i]);
                    blank!(bytes[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank!(bytes[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"..." / r#"..."# / br##"..."##.
        if b == b'r' || (b == b'b' && bytes.get(i + 1) == Some(&b'r')) {
            let r_at = if b == b'r' { i } else { i + 1 };
            // `r` must start a literal, not end an identifier like `var`.
            let ident_prefix = i > 0 && is_word(bytes[i - 1]);
            let mut j = r_at + 1;
            let mut hashes = 0usize;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if !ident_prefix && bytes.get(j) == Some(&b'"') {
                let start_line = line;
                // Keep the prefix and opening quote.
                while i <= j {
                    keep!(bytes[i]);
                    i += 1;
                }
                let content_start = i;
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain((0..hashes).map(|_| b'#'))
                    .collect();
                while i < bytes.len() && !bytes[i..].starts_with(&closer) {
                    blank!(bytes[i]);
                    i += 1;
                }
                strings.push(StrLit {
                    line: start_line,
                    offset: j,
                    text: src[content_start..i].to_string(),
                });
                for _ in 0..closer.len().min(bytes.len() - i) {
                    keep!(bytes[i]);
                    i += 1;
                }
                continue;
            }
        }
        // Regular (byte) string.
        if b == b'"'
            || (b == b'b' && bytes.get(i + 1) == Some(&b'"') && !(i > 0 && is_word(bytes[i - 1])))
        {
            if b == b'b' {
                keep!(b);
                i += 1;
            }
            let quote_at = i;
            let start_line = line;
            keep!(bytes[i]); // opening quote
            i += 1;
            let content_start = i;
            while i < bytes.len() && bytes[i] != b'"' {
                if bytes[i] == b'\\' && i + 1 < bytes.len() {
                    blank!(bytes[i]);
                    blank!(bytes[i + 1]);
                    i += 2;
                } else {
                    blank!(bytes[i]);
                    i += 1;
                }
            }
            strings.push(StrLit {
                line: start_line,
                offset: quote_at,
                text: src[content_start..i].to_string(),
            });
            if i < bytes.len() {
                keep!(bytes[i]); // closing quote
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime: 'x' or '\n' is a char, 'a in `&'a T`
        // is a lifetime. A char literal closes within a few bytes.
        if b == b'\'' {
            let is_char = match bytes.get(i + 1) {
                Some(b'\\') => true,
                Some(&c) if c != b'\'' => bytes.get(i + 2) == Some(&b'\''),
                _ => false,
            };
            if is_char {
                keep!(bytes[i]);
                i += 1;
                while i < bytes.len() && bytes[i] != b'\'' {
                    if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        blank!(bytes[i]);
                        blank!(bytes[i + 1]);
                        i += 2;
                    } else {
                        blank!(bytes[i]);
                        i += 1;
                    }
                }
                if i < bytes.len() {
                    keep!(bytes[i]);
                    i += 1;
                }
                continue;
            }
        }
        keep!(b);
        i += 1;
    }
    (
        String::from_utf8(out).expect("blanking preserves UTF-8 structure"),
        strings,
    )
}

/// Blanks every item gated by `#[cfg(test)]`: from the attribute to the
/// end of the following item (its matching close brace, or `;` for
/// brace-less items). Runs on the comment/literal-blanked view, so brace
/// matching cannot be confused by braces in comments or strings.
fn blank_cfg_test(code: &str) -> String {
    let mut out = code.as_bytes().to_vec();
    let mut search_from = 0usize;
    while let Some(found) = find_cfg_test(code, search_from) {
        let (attr_start, mut j) = found;
        // Skip any further attributes between the cfg and the item.
        let bytes = code.as_bytes();
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'#') {
                // Skip this attribute: `#[ ... ]` with bracket matching.
                while j < bytes.len() && bytes[j] != b'[' {
                    j += 1;
                }
                let mut depth = 0usize;
                while j < bytes.len() {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else {
                break;
            }
        }
        // Find the item's end: matching `}` of its first brace, unless a
        // `;` arrives first at depth 0 (use items, macro calls).
        let mut depth = 0usize;
        let mut end = j;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end += 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end += 1;
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        for slot in out.iter_mut().take(end).skip(attr_start) {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
        search_from = end;
    }
    String::from_utf8(out).expect("blanking preserves UTF-8 structure")
}

/// Finds the next `#[cfg(test)]` at or after `from` in the blanked view.
/// Returns `(start_offset, end_of_attribute_offset)`.
fn find_cfg_test(code: &str, from: usize) -> Option<(usize, usize)> {
    let bytes = code.as_bytes();
    let mut i = from;
    while let Some(pos) = code[i..].find("#[") {
        let start = i + pos;
        let mut j = start + 2;
        let mut depth = 1usize;
        let attr_body_start = j;
        while j < bytes.len() && depth > 0 {
            match bytes[j] {
                b'[' => depth += 1,
                b']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let body: String = code[attr_body_start..j - 1]
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        if body == "cfg(test)" {
            return Some((start, j));
        }
        i = j;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked_but_lines_survive() {
        let src = "let a = \"HashMap\"; // HashMap\n/* HashMap */ let b = 1;\n";
        let f = SourceFile::parse("x.rs", src.to_string());
        assert!(!f.code.contains("HashMap"), "{:?}", f.code);
        assert_eq!(f.code.lines().count(), src.lines().count());
        assert_eq!(f.strings.len(), 1);
        assert_eq!(f.strings[0].text, "HashMap");
        assert_eq!(f.strings[0].line, 1);
    }

    #[test]
    fn raw_strings_and_chars_are_handled() {
        let src =
            "let a = r#\"no \"HashMap\" here\"#; let c = '\\n'; let l: &'static str = \"x\";\n";
        let f = SourceFile::parse("x.rs", src.to_string());
        assert!(!f.code.contains("HashMap"));
        assert!(f.code.contains("&'static str"), "{:?}", f.code);
        assert_eq!(f.strings.len(), 2);
    }

    #[test]
    fn cfg_test_items_are_blanked_in_the_nontest_view() {
        let src = "fn ship() { real(); }\n#[cfg(test)]\nmod tests {\n  fn t() { std::env::var(\"X\"); }\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", src.to_string());
        assert!(f.code.contains("env::var"));
        assert!(!f.code_nontest.contains("env::var"));
        assert!(f.code_nontest.contains("fn ship"));
        assert!(f.code_nontest.contains("fn after"));
    }

    #[test]
    fn literal_positions_classify_test_vs_nontest() {
        let src = "fn ship() { let k = \"SLX_A\"; }\n#[cfg(test)]\nfn t() { let k = \"SLX_B\"; }\n";
        let f = SourceFile::parse("x.rs", src.to_string());
        let a = f.strings.iter().find(|s| s.text == "SLX_A").unwrap();
        let b = f.strings.iter().find(|s| s.text == "SLX_B").unwrap();
        assert!(f.literal_in_nontest(a.offset));
        assert!(!f.literal_in_nontest(b.offset));
    }
}
