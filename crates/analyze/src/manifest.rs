//! Wire-schema fingerprinting: the `WIRE_MANIFEST.txt` check.
//!
//! Two wire formats persist beyond one process: checkpoint images
//! (`FORMAT_VERSION`, `crates/engine/src/checkpoint.rs`) and server
//! frames (`PROTOCOL_VERSION`, `crates/server/src/wire.rs`). Both are
//! built from `StateCodec`/`DeltaCodec` encodings, so *any* codec impl
//! or codec-carrying struct in the workspace is wire surface: reorder
//! two fields and every previously written checkpoint decodes to
//! garbage — silently, because the compiler sees nothing wrong.
//!
//! This pass makes the surface explicit. It extracts, for every type
//! with a codec impl:
//!
//! - the declared fields (name, type, order) of the type, when its
//!   definition lives in the scanned sources — field drift is the
//!   highest-signal break and is reported field-by-field;
//! - a normalized hash of each codec impl body — encoding-logic drift
//!   that leaves the struct alone (e.g. swapping two `encode` calls) is
//!   caught too, just with a coarser "body changed" message;
//!
//! plus the `RunHeader`/`encode_image` checkpoint layout, the server
//! `Frame` enum, and the two version constants. The canonical rendering
//! of all that is checked in as `WIRE_MANIFEST.txt`; any difference from
//! the checked-in manifest fails the build, with the hint depending on
//! whether the governing version constant was already bumped (then:
//! regenerate with `--bless`) or not (then: bump it first — or bless
//! directly if the change is provably compatible with old bytes).
//! Blessing is always the explicit act that acknowledges a wire change.

use std::collections::BTreeMap;

use crate::scan;
use crate::source::SourceFile;
use crate::{Finding, ANALYSIS_WIRE};

/// Which version constant governs a type's compatibility story.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionDomain {
    /// Checkpoint images: `FORMAT_VERSION` in `checkpoint.rs`.
    Format,
    /// Server frames: `PROTOCOL_VERSION` in `wire.rs`.
    Protocol,
}

impl VersionDomain {
    fn label(self) -> &'static str {
        match self {
            VersionDomain::Format => "FORMAT_VERSION",
            VersionDomain::Protocol => "PROTOCOL_VERSION",
        }
    }
}

/// One manifest entry: a type with at least one codec impl (or one of
/// the explicitly tracked layouts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// File the entry is keyed to (the type's definition file when
    /// known, else the impl's file), workspace-relative.
    pub file: String,
    /// The impl target, normalized (`Vec<T>`, `(A, B)`, `$ty`, …).
    pub type_name: String,
    /// `field name: Type` lines in declaration order; empty when the
    /// definition is not in the scanned sources (builtins, generics).
    pub fields: Vec<String>,
    /// `impl <Trait> hash=<hex>` lines, sorted.
    pub impls: Vec<String>,
    /// Governing version constant.
    pub domain: VersionDomain,
}

/// The computed wire model: every entry plus the version constants.
#[derive(Debug)]
pub struct WireModel {
    /// `(file, type)` → entry.
    pub entries: BTreeMap<(String, String), Entry>,
    /// Current `FORMAT_VERSION`.
    pub format_version: u64,
    /// Current `PROTOCOL_VERSION`.
    pub protocol_version: u64,
}

/// Path (workspace-relative) of the checked-in manifest.
pub const MANIFEST_PATH: &str = "WIRE_MANIFEST.txt";
const CHECKPOINT_RS: &str = "crates/engine/src/checkpoint.rs";
const WIRE_RS: &str = "crates/server/src/wire.rs";

/// Extracts the wire model from the scanned sources.
pub fn extract(files: &[SourceFile]) -> Result<WireModel, Finding> {
    let version = |path: &str, name: &str| -> Result<u64, Finding> {
        files
            .iter()
            .find(|f| f.rel_path == path)
            .and_then(|f| scan::const_value(&f.code, name))
            .ok_or_else(|| Finding {
                analysis: ANALYSIS_WIRE,
                file: path.to_string(),
                line: 1,
                message: format!(
                    "cannot locate `const {name}` — the manifest check is anchored to it"
                ),
            })
    };
    let format_version = version(CHECKPOINT_RS, "FORMAT_VERSION")?;
    let protocol_version = version(WIRE_RS, "PROTOCOL_VERSION")?;

    let mut entries: BTreeMap<(String, String), Entry> = BTreeMap::new();
    for file in files {
        for (trait_name, target, body) in codec_impls(&file.code_nontest) {
            let base = base_type_name(&target);
            // Where is the target type defined? Search the whole crate
            // (codec impls often live in a sibling `codec.rs` module).
            let crate_prefix = crate_prefix(&file.rel_path);
            let def = files
                .iter()
                .filter(|f| f.rel_path.starts_with(&crate_prefix))
                .find_map(|f| {
                    type_fields(&f.code_nontest, &base).map(|fields| (f.rel_path.clone(), fields))
                });
            let (def_file, fields) = match def {
                Some((path, fields)) => (path, fields),
                None => (file.rel_path.clone(), Vec::new()),
            };
            let domain = if def_file == WIRE_RS || file.rel_path == WIRE_RS {
                VersionDomain::Protocol
            } else {
                VersionDomain::Format
            };
            let entry = entries
                .entry((def_file.clone(), target.clone()))
                .or_insert_with(|| Entry {
                    file: def_file,
                    type_name: target.clone(),
                    fields,
                    impls: Vec::new(),
                    domain,
                });
            entry.impls.push(format!(
                "impl {trait_name} hash={}",
                scan::fnv_hex(&scan::normalize_ws(&body))
            ));
            entry.impls.sort();
            entry.impls.dedup();
        }
    }

    // Explicitly tracked layouts that no codec impl covers.
    for (path, type_name, domain) in [
        (CHECKPOINT_RS, "RunHeader", VersionDomain::Format),
        (WIRE_RS, "Frame", VersionDomain::Protocol),
    ] {
        if let Some(f) = files.iter().find(|f| f.rel_path == path) {
            if let Some(fields) = type_fields(&f.code_nontest, type_name) {
                let entry = entries
                    .entry((path.to_string(), type_name.to_string()))
                    .or_insert_with(|| Entry {
                        file: path.to_string(),
                        type_name: type_name.to_string(),
                        fields: fields.clone(),
                        impls: Vec::new(),
                        domain,
                    });
                entry.fields = fields;
            }
        }
    }
    // The checkpoint image layout itself: everything `encode_image`
    // writes, fingerprinted as a body hash.
    if let Some(f) = files.iter().find(|f| f.rel_path == CHECKPOINT_RS) {
        if let Some(body) = fn_body(&f.code_nontest, "encode_image") {
            entries
                .entry((CHECKPOINT_RS.to_string(), "encode_image".to_string()))
                .or_insert_with(|| Entry {
                    file: CHECKPOINT_RS.to_string(),
                    type_name: "encode_image".to_string(),
                    fields: Vec::new(),
                    impls: Vec::new(),
                    domain: VersionDomain::Format,
                })
                .impls = vec![format!(
                "impl fn hash={}",
                scan::fnv_hex(&scan::normalize_ws(&body))
            )];
        }
    }

    Ok(WireModel {
        entries,
        format_version,
        protocol_version,
    })
}

/// Renders the model to the canonical manifest text.
pub fn render(model: &WireModel) -> String {
    let mut out = String::new();
    out.push_str("# WIRE_MANIFEST — the workspace's persisted wire surface, one section per\n");
    out.push_str("# codec-bearing type. Regenerate with `cargo run -p slx-analyze -- --bless`\n");
    out.push_str(
        "# after auditing compatibility (see EXPERIMENTS.md, \"Wire-schema manifest\").\n",
    );
    out.push_str("# Do not edit by hand.\n\n");
    out.push_str(&format!("format_version = {}\n", model.format_version));
    out.push_str(&format!("protocol_version = {}\n", model.protocol_version));
    for entry in model.entries.values() {
        out.push('\n');
        out.push_str(&format!(
            "[type {} :: {} ({})]\n",
            entry.file,
            entry.type_name,
            entry.domain.label()
        ));
        for imp in &entry.impls {
            out.push_str(imp);
            out.push('\n');
        }
        for field in &entry.fields {
            out.push_str(&format!("field {field}\n"));
        }
    }
    out
}

/// Compares the computed model against the checked-in manifest text,
/// returning one finding per drifted type (empty = clean).
pub fn check(model: &WireModel, stored: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let stored_model = parse_manifest(stored);

    let hint = |domain: VersionDomain| -> String {
        let (stored_v, current_v, where_) = match domain {
            VersionDomain::Format => (
                stored_model.format_version,
                model.format_version,
                CHECKPOINT_RS,
            ),
            VersionDomain::Protocol => (
                stored_model.protocol_version,
                model.protocol_version,
                WIRE_RS,
            ),
        };
        if stored_v == current_v {
            format!(
                "wire drift without a {} bump: bump it in {} (old persisted bytes become \
                 incompatible) and regenerate with `cargo run -p slx-analyze -- --bless`, or \
                 bless directly if the encoded bytes are provably unchanged",
                domain.label(),
                where_
            )
        } else {
            format!(
                "{} was bumped ({} -> {}); acknowledge the new layout with \
                 `cargo run -p slx-analyze -- --bless`",
                domain.label(),
                stored_v,
                current_v
            )
        }
    };

    for (key, entry) in &model.entries {
        match stored_model.entries.get(key) {
            None => findings.push(Finding {
                analysis: ANALYSIS_WIRE,
                file: entry.file.clone(),
                line: 1,
                message: format!(
                    "type `{}` carries a codec impl but is not in {MANIFEST_PATH}; {}",
                    entry.type_name,
                    hint(entry.domain)
                ),
            }),
            Some(old) => {
                for msg in diff_entry(old, entry) {
                    findings.push(Finding {
                        analysis: ANALYSIS_WIRE,
                        file: entry.file.clone(),
                        line: 1,
                        message: format!(
                            "type `{}`: {}; {}",
                            entry.type_name,
                            msg,
                            hint(entry.domain)
                        ),
                    });
                }
            }
        }
    }
    for (key, old) in &stored_model.entries {
        if !model.entries.contains_key(key) {
            findings.push(Finding {
                analysis: ANALYSIS_WIRE,
                file: old.file.clone(),
                line: 1,
                message: format!(
                    "type `{}` is in {MANIFEST_PATH} but no longer carries a codec impl; {}",
                    old.type_name,
                    hint(old.domain)
                ),
            });
        }
    }
    // Version constants recorded in the manifest must match the code
    // even when no entry drifted (a bare bump still needs a bless, so
    // the manifest always names the versions actually in force).
    if (stored_model.format_version != model.format_version
        || stored_model.protocol_version != model.protocol_version)
        && findings.is_empty()
    {
        findings.push(Finding {
            analysis: ANALYSIS_WIRE,
            file: MANIFEST_PATH.to_string(),
            line: 1,
            message: format!(
                "version constants changed (format {} -> {}, protocol {} -> {}) — \
                 regenerate with `cargo run -p slx-analyze -- --bless`",
                stored_model.format_version,
                model.format_version,
                stored_model.protocol_version,
                model.protocol_version
            ),
        });
    }
    findings
}

/// Field/impl differences between the stored and current entry, each
/// naming the offending field.
fn diff_entry(old: &Entry, new: &Entry) -> Vec<String> {
    let mut out = Vec::new();
    for f in &new.fields {
        if !old.fields.contains(f) {
            out.push(format!("field `{f}` added or changed"));
        }
    }
    for f in &old.fields {
        if !new.fields.contains(f) {
            out.push(format!("field `{f}` removed or changed"));
        }
    }
    if out.is_empty() && old.fields != new.fields {
        // Same field set, different order.
        let moved = old
            .fields
            .iter()
            .zip(&new.fields)
            .find(|(a, b)| a != b)
            .map(|(a, _)| a.clone())
            .unwrap_or_default();
        out.push(format!("fields reordered (first moved: `{moved}`)"));
    }
    if old.impls != new.impls {
        out.push("codec impl body changed".to_string());
    }
    out
}

/// Parses a stored manifest back into a model (tolerant: unknown lines
/// are ignored, so comment edits never break the check).
fn parse_manifest(text: &str) -> WireModel {
    let mut entries = BTreeMap::new();
    let mut format_version = 0u64;
    let mut protocol_version = 0u64;
    let mut current: Option<Entry> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(v) = line.strip_prefix("format_version = ") {
            format_version = v.parse().unwrap_or(0);
        } else if let Some(v) = line.strip_prefix("protocol_version = ") {
            protocol_version = v.parse().unwrap_or(0);
        } else if let Some(head) = line
            .strip_prefix("[type ")
            .and_then(|l| l.strip_suffix(']'))
        {
            if let Some(entry) = current.take() {
                entries.insert((entry.file.clone(), entry.type_name.clone()), entry);
            }
            // `<file> :: <type> (<DOMAIN>)`
            let (file, rest) = head.split_once(" :: ").unwrap_or((head, ""));
            let (type_name, domain) = match rest.rsplit_once(" (") {
                Some((t, d)) if d.starts_with("PROTOCOL") => (t, VersionDomain::Protocol),
                Some((t, _)) => (t, VersionDomain::Format),
                None => (rest, VersionDomain::Format),
            };
            current = Some(Entry {
                file: file.to_string(),
                type_name: type_name.to_string(),
                fields: Vec::new(),
                impls: Vec::new(),
                domain,
            });
        } else if let Some(field) = line.strip_prefix("field ") {
            if let Some(entry) = current.as_mut() {
                entry.fields.push(field.to_string());
            }
        } else if line.starts_with("impl ") {
            if let Some(entry) = current.as_mut() {
                entry.impls.push(line.to_string());
            }
        }
    }
    if let Some(entry) = current.take() {
        entries.insert((entry.file.clone(), entry.type_name.clone()), entry);
    }
    WireModel {
        entries,
        format_version,
        protocol_version,
    }
}

/// Every `impl <path::>StateCodec|DeltaCodec for <Target> { body }` in
/// `code`, as `(trait, normalized target, body)`.
fn codec_impls(code: &str) -> Vec<(String, String, String)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for at in scan::token_offsets(code, "impl") {
        let mut i = at + 4;
        i = scan::skip_ws(bytes, i);
        if bytes.get(i) == Some(&b'<') {
            i = scan::skip_matched(bytes, i, b'<', b'>');
            i = scan::skip_ws(bytes, i);
        }
        // Trait path: segments up to `for`; the last segment is the name.
        let path_start = i;
        let mut last_segment = String::new();
        loop {
            let (ident, next) = scan::read_ident(code, i);
            if ident.is_empty() {
                break;
            }
            last_segment = ident;
            i = scan::skip_ws(bytes, next);
            if bytes.get(i) == Some(&b'<') {
                i = scan::skip_matched(bytes, i, b'<', b'>');
                i = scan::skip_ws(bytes, i);
            }
            if code[i..].starts_with("::") {
                i = scan::skip_ws(bytes, i + 2);
            } else {
                break;
            }
        }
        if i == path_start || (last_segment != "StateCodec" && last_segment != "DeltaCodec") {
            continue;
        }
        let (kw, next) = scan::read_ident(code, scan::skip_ws(bytes, i));
        if kw != "for" {
            continue;
        }
        // Target: everything up to the impl's `{` or a `where` clause.
        let target_start = scan::skip_ws(bytes, next);
        let mut j = target_start;
        let mut depth_angle = 0i32;
        while j < bytes.len() {
            match bytes[j] {
                b'<' => depth_angle += 1,
                b'>' => depth_angle -= 1,
                b'{' if depth_angle <= 0 => break,
                _ => {}
            }
            if depth_angle <= 0
                && code[j..].starts_with("where")
                && !scan::is_word(bytes[j.saturating_sub(1)])
            {
                break;
            }
            j += 1;
        }
        let target = scan::normalize_ws(&code[target_start..j]);
        if target.is_empty() {
            continue;
        }
        // Body: the matched braces from the first `{` at/after `j`.
        let body_open = match code[j..].find('{') {
            Some(p) => j + p,
            None => continue,
        };
        let body_end = scan::skip_matched(bytes, body_open, b'{', b'}');
        out.push((last_segment, target, code[body_open..body_end].to_string()));
    }
    out
}

/// `base_type_name("Vec<T>")` → `Vec`; tuples and `$ty` stay verbatim.
fn base_type_name(target: &str) -> String {
    let t = target.trim_start_matches('&').trim();
    match t.find(['<', ' ']) {
        Some(cut) if !t.starts_with('(') => t[..cut].to_string(),
        _ => t.to_string(),
    }
}

/// The declared fields (named struct), elements (tuple struct), or
/// variants (enum) of type `name` in `code`, normalized, in declaration
/// order. `None` when `name` is not defined here.
fn type_fields(code: &str, name: &str) -> Option<Vec<String>> {
    if name.is_empty() || !name.as_bytes()[0].is_ascii_uppercase() {
        return None;
    }
    let bytes = code.as_bytes();
    for kw in ["struct", "enum"] {
        for at in scan::token_offsets(code, kw) {
            let i = scan::skip_ws(bytes, at + kw.len());
            let (ident, mut j) = scan::read_ident(code, i);
            if ident != name {
                continue;
            }
            j = scan::skip_ws(bytes, j);
            if bytes.get(j) == Some(&b'<') {
                j = scan::skip_matched(bytes, j, b'<', b'>');
                j = scan::skip_ws(bytes, j);
            }
            return Some(match bytes.get(j) {
                Some(&b'{') => {
                    let end = scan::skip_matched(bytes, j, b'{', b'}');
                    let body = &code[j + 1..end - 1];
                    if kw == "enum" {
                        split_top_level(body)
                            .into_iter()
                            .map(|v| scan::normalize_ws(&v))
                            .filter(|v| !v.is_empty())
                            .collect()
                    } else {
                        split_top_level(body)
                            .into_iter()
                            .map(|f| scan::normalize_ws(&strip_field_prefix(&f)))
                            .filter(|f| !f.is_empty())
                            .collect()
                    }
                }
                Some(&b'(') => {
                    let end = scan::skip_matched(bytes, j, b'(', b')');
                    let body = &code[j + 1..end - 1];
                    split_top_level(body)
                        .into_iter()
                        .enumerate()
                        .map(|(idx, t)| {
                            format!("{idx}: {}", scan::normalize_ws(&strip_field_prefix(&t)))
                        })
                        .filter(|f| !f.ends_with(": "))
                        .collect()
                }
                _ => Vec::new(), // unit struct
            });
        }
    }
    None
}

/// Splits on commas at bracket depth 0 (`<>`, `()`, `{}`, `[]` aware).
fn split_top_level(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for c in body.chars() {
        match c {
            '<' | '(' | '{' | '[' => depth += 1,
            '>' | ')' | '}' | ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(c);
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

/// Drops attributes and visibility from one field declaration.
fn strip_field_prefix(field: &str) -> String {
    let mut s = field.trim();
    while s.starts_with("#[") {
        let end = scan::skip_matched(s.as_bytes(), s.find('[').unwrap_or(0), b'[', b']');
        s = s[end..].trim_start();
    }
    if let Some(rest) = s.strip_prefix("pub") {
        // Word boundary: `pub a` and `pub(crate) a` qualify, `pubkey: T`
        // does not.
        if let Some(stripped) = rest.trim_start().strip_prefix('(') {
            let close = stripped.find(')').map_or(0, |p| p + 1);
            s = stripped[close..].trim_start();
        } else if rest.starts_with(char::is_whitespace) {
            s = rest.trim_start();
        }
    }
    s.to_string()
}

/// The body of `fn <name>` in `code`, braces included.
fn fn_body(code: &str, name: &str) -> Option<String> {
    let bytes = code.as_bytes();
    for at in scan::token_offsets(code, name) {
        // Must be a definition: preceded by `fn`.
        let before = code[..at].trim_end();
        if !before.ends_with("fn") {
            continue;
        }
        let open = at + code[at..].find('{')?;
        let end = scan::skip_matched(bytes, open, b'{', b'}');
        return Some(code[open..end].to_string());
    }
    None
}

/// The `crates/<name>/` prefix of a workspace-relative path (or `src/`
/// for the root package).
fn crate_prefix(rel_path: &str) -> String {
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts.first() == Some(&"crates") && parts.len() > 2 {
        format!("crates/{}/", parts[1])
    } else {
        "src/".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src.to_string())
    }

    const CKPT: &str = "pub const FORMAT_VERSION: u64 = 1;\npub struct RunHeader { pub a: u32 }\nfn encode_image() { body(); }\n";
    const WIRE: &str = "pub const PROTOCOL_VERSION: u8 = 1;\npub enum Frame { A, B(u32) }\npub struct Req { pub id: String }\nimpl StateCodec for Req { fn encode(&self) {} }\n";

    fn fixture(extra: &str) -> Vec<SourceFile> {
        vec![
            file("crates/engine/src/checkpoint.rs", CKPT),
            file("crates/server/src/wire.rs", WIRE),
            file(
                "crates/engine/src/codec.rs",
                &format!("pub struct Foo {{ pub a: u32, pub b: u64 }}\nimpl StateCodec for Foo {{ fn encode(&self) {{}} }}\n{extra}"),
            ),
        ]
    }

    #[test]
    fn extraction_finds_fields_impls_and_versions() {
        let model = extract(&fixture("")).unwrap();
        assert_eq!(model.format_version, 1);
        assert_eq!(model.protocol_version, 1);
        let foo = &model.entries[&("crates/engine/src/codec.rs".to_string(), "Foo".to_string())];
        assert_eq!(foo.fields, vec!["a: u32", "b: u64"]);
        assert_eq!(foo.impls.len(), 1);
        let req = &model.entries[&("crates/server/src/wire.rs".to_string(), "Req".to_string())];
        assert_eq!(req.domain, VersionDomain::Protocol);
        let frame = &model.entries[&("crates/server/src/wire.rs".to_string(), "Frame".to_string())];
        assert_eq!(frame.fields, vec!["A", "B(u32)"]);
        assert!(model.entries.contains_key(&(
            "crates/engine/src/checkpoint.rs".to_string(),
            "encode_image".to_string()
        )));
    }

    #[test]
    fn clean_roundtrip_then_field_drift_names_type_and_field() {
        let model = extract(&fixture("")).unwrap();
        let stored = render(&model);
        assert!(
            check(&model, &stored).is_empty(),
            "bless then check must be clean"
        );

        // Mutate: add a field to Foo without bumping FORMAT_VERSION.
        let mut files = fixture("");
        files[2] = file(
            "crates/engine/src/codec.rs",
            "pub struct Foo { pub a: u32, pub extra: bool, pub b: u64 }\nimpl StateCodec for Foo { fn encode(&self) {} }\n",
        );
        let drifted = extract(&files).unwrap();
        let findings = check(&drifted, &stored);
        assert!(!findings.is_empty());
        let msg = &findings[0].message;
        assert!(msg.contains("Foo"), "{msg}");
        assert!(msg.contains("extra: bool"), "{msg}");
        assert!(msg.contains("bump it"), "{msg}");
    }

    #[test]
    fn bumped_version_changes_the_hint_but_still_requires_bless() {
        let model = extract(&fixture("")).unwrap();
        let stored = render(&model);
        let mut files = fixture("");
        files[0] = file(
            "crates/engine/src/checkpoint.rs",
            &CKPT.replace("= 1", "= 2"),
        );
        files[2] = file(
            "crates/engine/src/codec.rs",
            "pub struct Foo { pub a: u32, pub b: u64, pub extra: bool }\nimpl StateCodec for Foo { fn encode(&self) {} }\n",
        );
        let drifted = extract(&files).unwrap();
        let findings = check(&drifted, &stored);
        assert!(!findings.is_empty());
        assert!(
            findings[0].message.contains("--bless"),
            "{}",
            findings[0].message
        );
        assert!(
            findings[0].message.contains("1 -> 2"),
            "{}",
            findings[0].message
        );
        // And blessing the new state makes it clean.
        assert!(check(&drifted, &render(&drifted)).is_empty());
    }

    #[test]
    fn reorder_and_impl_body_drift_are_reported() {
        let model = extract(&fixture("")).unwrap();
        let stored = render(&model);
        let mut files = fixture("");
        files[2] = file(
            "crates/engine/src/codec.rs",
            "pub struct Foo { pub b: u64, pub a: u32 }\nimpl StateCodec for Foo { fn encode(&self) {} }\n",
        );
        let findings = check(&extract(&files).unwrap(), &stored);
        assert!(
            findings.iter().any(|f| f.message.contains("reordered")),
            "{findings:?}"
        );

        let mut files = fixture("");
        files[2] = file(
            "crates/engine/src/codec.rs",
            "pub struct Foo { pub a: u32, pub b: u64 }\nimpl StateCodec for Foo { fn encode(&self) { changed(); } }\n",
        );
        let findings = check(&extract(&files).unwrap(), &stored);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("impl body changed")),
            "{findings:?}"
        );
    }

    #[test]
    fn generic_and_macro_targets_become_builtin_entries() {
        let files = fixture(
            "impl<T: StateCodec> StateCodec for Vec<T> { fn encode(&self) {} }\nmacro_rules! m { ($ty:ty) => { impl StateCodec for $ty { fn encode(&self) {} } } }\n",
        );
        let model = extract(&files).unwrap();
        let vec_entry = &model.entries[&(
            "crates/engine/src/codec.rs".to_string(),
            "Vec<T>".to_string(),
        )];
        assert!(vec_entry.fields.is_empty());
        assert!(
            model.entries.keys().any(|(_, t)| t == "$ty"),
            "macro impl target tracked: {:?}",
            model.entries.keys()
        );
    }
}
