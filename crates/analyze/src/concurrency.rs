//! Concurrency hygiene: a best-effort audit of lock usage.
//!
//! The workspace keeps blocking primitives deliberately rare — the
//! kernel's parallelism is scoped-thread fork/join with deterministic
//! merges, and only two files own `Mutex`/`Condvar` state (the BFS
//! worker result slot in `checker.rs`, the server's job queue and shared
//! writers in `server.rs`). This pass pins that rarity and the local
//! rules those two files follow:
//!
//! 1. **Audited allowlist** — a lock primitive appearing in any other
//!    file fails the build until the file is reviewed and added here (or
//!    the locking is replaced with message passing, usually the better
//!    fix).
//! 2. **Poisoning is handled deliberately** — every `.lock()` is
//!    followed by `.expect(` with a message (a poisoned lock means a
//!    worker panicked; unwrapping silently would just re-panic with no
//!    context at a confusing site).
//! 3. **Condvar waits sit in guard loops** — a bare un-looped
//!    `wait`/`wait_timeout` is a spurious-wakeup bug by construction.
//! 4. **No fsync-class I/O under a lock** — a function that both takes a
//!    lock and calls `sync_all`/`sync_data`/`commit_bytes` serializes
//!    every worker behind disk latency (frame *writes* under the shared
//!    writer mutex are fine and intended; durability barriers are not).
//!
//! Textual heuristics, deliberately: the point is to make the next
//! `Mutex` show up in review, not to model the borrow checker. The
//! ThreadSanitizer CI job (best-effort, nightly-gated) is the dynamic
//! complement to this static pass.

use crate::scan;
use crate::source::SourceFile;
use crate::{Finding, ANALYSIS_CONC};

/// Files reviewed for rules 2–4; lock primitives anywhere else are
/// findings by rule 1.
const AUDITED: &[&str] = &[
    "crates/engine/src/checker.rs",
    "crates/server/src/server.rs",
];

/// Runs the audit.
pub fn audit(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let code = &file.code_nontest;
        let has_primitive = ["Mutex", "Condvar", "RwLock"]
            .iter()
            .any(|t| scan::has_token(code, t));
        if !has_primitive {
            continue;
        }
        if !AUDITED.contains(&file.rel_path.as_str()) {
            let at = ["Mutex", "Condvar", "RwLock"]
                .iter()
                .find_map(|t| scan::token_offsets(code, t).first().copied())
                .unwrap_or(0);
            findings.push(Finding {
                analysis: ANALYSIS_CONC,
                file: file.rel_path.clone(),
                line: file.line_of(at),
                message: "lock primitive outside the audited files: review the locking \
                          discipline (poisoning, wait loops, I/O under locks) and add the \
                          file to the audit allowlist in crates/analyze/src/concurrency.rs, \
                          or prefer fork/join + message passing"
                    .to_string(),
            });
            continue;
        }
        findings.extend(check_lock_poisoning(file));
        findings.extend(check_wait_loops(file));
        findings.extend(check_sync_under_lock(file));
    }
    findings
}

/// Rule 2: `.lock()` must be followed by `.expect(`.
fn check_lock_poisoning(file: &SourceFile) -> Vec<Finding> {
    let code = &file.code_nontest;
    let mut findings = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(".lock()") {
        let at = from + pos;
        from = at + 7;
        let rest: String = code[at + 7..]
            .chars()
            .filter(|c| !c.is_whitespace())
            .take(12)
            .collect();
        if !rest.starts_with(".expect(") {
            findings.push(Finding {
                analysis: ANALYSIS_CONC,
                file: file.rel_path.clone(),
                line: file.line_of(at),
                message: "`.lock()` without `.expect(…)`: handle poisoning deliberately with \
                          a message naming what a poisoned lock implies here"
                    .to_string(),
            });
        }
    }
    findings
}

/// Rule 3: condvar waits inside `loop`/`while` guards.
fn check_wait_loops(file: &SourceFile) -> Vec<Finding> {
    let code = &file.code_nontest;
    let mut findings = Vec::new();
    for needle in [".wait(", ".wait_timeout("] {
        let mut from = 0usize;
        while let Some(pos) = code[from..].find(needle) {
            let at = from + pos;
            from = at + needle.len();
            // Look back a window for an enclosing guard loop keyword.
            let window_start = code[..at].rfind("fn ").unwrap_or(0);
            let window = &code[window_start..at];
            if !(scan::has_token(window, "loop") || scan::has_token(window, "while")) {
                findings.push(Finding {
                    analysis: ANALYSIS_CONC,
                    file: file.rel_path.clone(),
                    line: file.line_of(at),
                    message: format!(
                        "`{needle}…` with no enclosing guard loop in this function: condvar \
                         wakeups are allowed to be spurious, re-check the predicate in a loop"
                    ),
                });
            }
        }
    }
    findings
}

/// Rule 4: no durability barrier in a function that also locks.
fn check_sync_under_lock(file: &SourceFile) -> Vec<Finding> {
    let code = &file.code_nontest;
    let mut findings = Vec::new();
    for (start, end) in function_spans(code) {
        let body = &code[start..end];
        if !body.contains(".lock()") {
            continue;
        }
        for sync in ["sync_all", "sync_data", "commit_bytes"] {
            if let Some(pos) = scan::token_offsets(body, sync).first() {
                findings.push(Finding {
                    analysis: ANALYSIS_CONC,
                    file: file.rel_path.clone(),
                    line: file.line_of(start + pos),
                    message: format!(
                        "`{sync}` in a function that also takes a lock: a durability barrier \
                         under a mutex serializes every worker behind disk latency — commit \
                         outside the critical section"
                    ),
                });
            }
        }
    }
    findings
}

/// `(body_start, body_end)` spans of every `fn` in the blanked view.
fn function_spans(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for at in scan::token_offsets(code, "fn") {
        let Some(open_rel) = code[at..].find('{') else {
            continue;
        };
        // Stop at fn declarations in traits (a `;` before the `{`).
        if code[at..at + open_rel].contains(';') {
            continue;
        }
        let open = at + open_rel;
        let end = scan::skip_matched(bytes, open, b'{', b'}');
        out.push((open, end));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src.to_string())
    }

    #[test]
    fn unaudited_lock_files_are_flagged() {
        let files = vec![file("crates/x/src/a.rs", "use std::sync::Mutex;\n")];
        let findings = audit(&files);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("audit allowlist"));
    }

    #[test]
    fn audited_files_obey_the_local_rules() {
        let good = "use std::sync::{Mutex, Condvar};\nfn pop(&self) { loop { let g = self.jobs.lock().expect(\"q\"); let g = self.ready.wait_timeout(g, d).expect(\"q\"); } }\n";
        assert!(audit(&[file(AUDITED[1], good)]).is_empty());

        let unwrap = "use std::sync::Mutex;\nfn f(&self) { let g = self.m.lock().unwrap(); }\n";
        let findings = audit(&[file(AUDITED[1], unwrap)]);
        assert!(
            findings.iter().any(|f| f.message.contains("poisoning")),
            "{findings:?}"
        );

        let bare_wait =
            "use std::sync::Condvar;\nfn f(&self) { let g = self.cv.wait(g).expect(\"x\"); }\n";
        let findings = audit(&[file(AUDITED[1], bare_wait)]);
        assert!(
            findings.iter().any(|f| f.message.contains("spurious")),
            "{findings:?}"
        );

        let sync = "use std::sync::Mutex;\nfn f(&self) { let g = self.m.lock().expect(\"x\"); file.sync_all(); }\n";
        let findings = audit(&[file(AUDITED[1], sync)]);
        assert!(
            findings.iter().any(|f| f.message.contains("durability")),
            "{findings:?}"
        );
    }
}
