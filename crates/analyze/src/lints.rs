//! Determinism lints: the checks that keep nondeterminism sources out of
//! verdict-producing code.
//!
//! Four rules, each with an explicitly sanctioned home:
//!
//! 1. **No default-hasher containers** (`HashMap`/`HashSet`/
//!    `DefaultHasher`/`RandomState`) outside `crates/engine/src/detmap.rs`
//!    — std's per-process hash seed makes iteration order a run-to-run
//!    coin flip, and one forgotten sort between such a container and a
//!    digest/merge/encode breaks verdict determinism silently. Use
//!    [`DetHashMap`]/[`DetHashSet`] (fixed seed) or a `BTreeMap`. A line
//!    provably order-insensitive (membership-only memo) may carry a
//!    `det-lint: allow (<reason>)` comment.
//! 2. **No ambient wall-clock** (`Instant`/`SystemTime`) outside
//!    `crates/engine/src/stats.rs` (the sanctioned [`Stopwatch`]) and
//!    `crates/bench/**` (whose entire purpose is timing).
//! 3. **No ambient env reads** (`env::var`/`env::var_os`) outside
//!    `crates/engine/src/knobs.rs` — every knob goes through the typed
//!    registry accessors, which also own the PR 7 hard-error contract.
//! 4. **Knob literals agree with the registry**: every `SLX_*` string
//!    literal in shipping code names a registered knob, every registered
//!    knob is referenced by code outside the registry (the statics are
//!    named after their variables, so this is an identifier search), and
//!    the EXPERIMENTS.md knob table lists exactly the registry.
//!
//! Test code (`tests/`, benches, `#[cfg(test)]` items) is exempt from
//! all four: tests legitimately pin env vars and build throwaway maps.

use crate::scan;
use crate::source::SourceFile;
use crate::{Finding, ANALYSIS_DET, ANALYSIS_KNOBS};

const DETMAP_RS: &str = "crates/engine/src/detmap.rs";
const STATS_RS: &str = "crates/engine/src/stats.rs";
const KNOBS_RS: &str = "crates/engine/src/knobs.rs";

/// Rule 1: default-hasher containers.
pub fn default_hasher(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if file.rel_path == DETMAP_RS {
            continue;
        }
        for token in ["HashMap", "HashSet", "DefaultHasher", "RandomState"] {
            for at in scan::token_offsets(&file.code_nontest, token) {
                let line = file.line_of(at);
                if file.det_allow_lines.contains(&line) {
                    continue;
                }
                findings.push(Finding {
                    analysis: ANALYSIS_DET,
                    file: file.rel_path.clone(),
                    line,
                    message: format!(
                        "default-hasher `{token}` in shipping code: iteration order is \
                         seeded per process. Use DetHashMap/DetHashSet (crates/engine/src/detmap.rs) \
                         or a BTree container, or mark a provably order-insensitive use with \
                         `det-lint: allow (<reason>)`"
                    ),
                });
            }
        }
    }
    findings
}

/// Rule 2: ambient wall-clock reads.
pub fn wall_clock(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if file.rel_path == STATS_RS || file.rel_path.starts_with("crates/bench/") {
            continue;
        }
        for token in ["Instant", "SystemTime"] {
            for at in scan::token_offsets(&file.code_nontest, token) {
                findings.push(Finding {
                    analysis: ANALYSIS_DET,
                    file: file.rel_path.clone(),
                    line: file.line_of(at),
                    message: format!(
                        "`{token}` outside the sanctioned clock: route timing through \
                         slx_engine::Stopwatch (crates/engine/src/stats.rs) so wall-clock \
                         can only feed reporting statistics"
                    ),
                });
            }
        }
    }
    findings
}

/// Rule 3: ambient env reads.
pub fn env_reads(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if file.rel_path == KNOBS_RS {
            continue;
        }
        for at in scan::env_var_reads(&file.code_nontest) {
            findings.push(Finding {
                analysis: ANALYSIS_DET,
                file: file.rel_path.clone(),
                line: file.line_of(at),
                message: "direct `env::var` read: every knob goes through the typed registry \
                          accessors in crates/engine/src/knobs.rs (which also own the \
                          hard-error parse contract)"
                    .to_string(),
            });
        }
    }
    findings
}

/// Rule 4: `SLX_*` literals ↔ registry ↔ docs agreement.
///
/// `registry` is the knob-name set parsed from `knobs.rs`; `docs` is the
/// raw EXPERIMENTS.md text (or `None` when the docs file is absent, as
/// in reduced fixture trees).
pub fn knob_agreement(
    files: &[SourceFile],
    registry: &[String],
    docs: Option<&str>,
) -> Vec<Finding> {
    let mut findings = Vec::new();

    // (a) Every SLX_* literal in shipping code names a registered knob.
    for file in files {
        if file.rel_path == KNOBS_RS {
            continue;
        }
        for lit in &file.strings {
            if !file.literal_in_nontest(lit.offset) {
                continue;
            }
            for (_, name) in scan::slx_tokens(&lit.text) {
                if !registry.iter().any(|r| r == &name) {
                    findings.push(Finding {
                        analysis: ANALYSIS_KNOBS,
                        file: file.rel_path.clone(),
                        line: lit.line,
                        message: format!(
                            "string literal names `{name}`, which is not in the knob registry \
                             (crates/engine/src/knobs.rs) — register it (name, kind, default, doc) \
                             and read it through the typed accessors"
                        ),
                    });
                }
            }
        }
    }

    // (b) Every registered knob is referenced outside the registry (the
    // statics are named after their variables, so dead registry entries
    // show up as an unreferenced identifier).
    for name in registry {
        let referenced = files
            .iter()
            .filter(|f| f.rel_path != KNOBS_RS)
            .any(|f| scan::has_token(&f.code_nontest, name));
        if !referenced {
            findings.push(Finding {
                analysis: ANALYSIS_KNOBS,
                file: KNOBS_RS.to_string(),
                line: 1,
                message: format!(
                    "registered knob `{name}` is never referenced outside the registry — \
                     dead entry, or a call site still parsing the variable by hand"
                ),
            });
        }
    }

    // (c) The docs table lists exactly the registry.
    if let Some(docs) = docs {
        let table_names: Vec<String> = docs
            .lines()
            .filter(|l| l.trim_start().starts_with('|'))
            .flat_map(|l| scan::slx_tokens(l).into_iter().map(|(_, n)| n))
            .collect();
        for name in registry {
            if !table_names.iter().any(|t| t == name) {
                findings.push(Finding {
                    analysis: ANALYSIS_KNOBS,
                    file: "EXPERIMENTS.md".to_string(),
                    line: 1,
                    message: format!("knob `{name}` is registered but missing from the EXPERIMENTS.md knob table"),
                });
            }
        }
        for name in &table_names {
            if !registry.iter().any(|r| r == name) {
                findings.push(Finding {
                    analysis: ANALYSIS_KNOBS,
                    file: "EXPERIMENTS.md".to_string(),
                    line: 1,
                    message: format!(
                        "EXPERIMENTS.md knob table lists `{name}`, which is not in the registry"
                    ),
                });
            }
        }
    }
    findings
}

/// Parses the knob-name registry out of `knobs.rs`: every `name:
/// "SLX_…"` field in shipping code.
pub fn parse_registry(files: &[SourceFile]) -> Vec<String> {
    let Some(knobs) = files.iter().find(|f| f.rel_path == KNOBS_RS) else {
        return Vec::new();
    };
    let mut names = Vec::new();
    for lit in &knobs.strings {
        if !knobs.literal_in_nontest(lit.offset) {
            continue;
        }
        // A registry entry's name literal is exactly one SLX_ token.
        let tokens = scan::slx_tokens(&lit.text);
        if tokens.len() == 1 && tokens[0].1 == lit.text {
            // Must be a `name:` field, not e.g. a doc string: look back
            // past whitespace for `name:`.
            let before = knobs.code[..lit.offset].trim_end();
            if before.ends_with("name:") {
                names.push(lit.text.clone());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src.to_string())
    }

    #[test]
    fn hasher_lint_flags_shipping_code_only() {
        let files = vec![
            file("crates/x/src/a.rs", "use std::collections::HashMap;\n"),
            file(
                "crates/x/src/b.rs",
                "#[cfg(test)]\nmod t { use std::collections::HashMap; }\n",
            ),
            file(
                "crates/x/src/c.rs",
                "let m = HashSet::new(); // det-lint: allow (membership only)\n",
            ),
            file(DETMAP_RS, "pub type DetHashMap<K,V> = HashMap<K,V,Det>;\n"),
        ];
        let findings = default_hasher(&files);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].file, "crates/x/src/a.rs");
    }

    #[test]
    fn clock_and_env_lints_respect_sanctioned_homes() {
        let files = vec![
            file(
                "crates/x/src/a.rs",
                "let t = Instant::now(); std::env::var(\"X\");\n",
            ),
            file(STATS_RS, "struct Stopwatch { start: std::time::Instant }\n"),
            file(KNOBS_RS, "std::env::var_os(name);\n"),
            file(
                "crates/bench/src/lib.rs",
                "let t = std::time::Instant::now();\n",
            ),
        ];
        assert_eq!(wall_clock(&files).len(), 1);
        assert_eq!(env_reads(&files).len(), 1);
    }

    #[test]
    fn knob_agreement_checks_all_three_ways() {
        let knobs_src = "pub static SLX_A: Knob = Knob { name: \"SLX_A\", };\npub static SLX_B: Knob = Knob { name: \"SLX_B\", };\n";
        let files = vec![
            file(KNOBS_RS, knobs_src),
            file(
                "crates/x/src/a.rs",
                "knobs::SLX_A.usize_value(); let s = \"SLX_ROGUE\";\n",
            ),
        ];
        let registry = parse_registry(&files);
        assert_eq!(registry, vec!["SLX_A".to_string(), "SLX_B".to_string()]);
        let docs = "| `SLX_A` | x |\n| `SLX_C` | y |\n";
        let findings = knob_agreement(&files, &registry, Some(docs));
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("SLX_ROGUE")), "{msgs:?}");
        assert!(
            msgs.iter()
                .any(|m| m.contains("SLX_B") && m.contains("never referenced")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("SLX_B") && m.contains("missing from")),
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("SLX_C")), "{msgs:?}");
    }
}
