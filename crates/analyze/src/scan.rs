//! Word-bounded token searches over the blanked source views (the
//! standard library has no regex engine, and the analyzer is
//! dependency-free by design).

/// Whether `b` can be part of an identifier.
pub fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of every word-bounded occurrence of `token` in `text`.
pub fn token_offsets(text: &str, token: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(token) {
        let at = from + pos;
        let before_ok = at == 0 || !is_word(bytes[at - 1]);
        let end = at + token.len();
        let after_ok = end >= bytes.len() || !is_word(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + token.len().max(1);
    }
    out
}

/// Whether `text` contains a word-bounded occurrence of `token`.
pub fn has_token(text: &str, token: &str) -> bool {
    !token_offsets(text, token).is_empty()
}

/// Every maximal `SLX_…` token (`SLX_` followed by `[A-Z0-9_]+`) in
/// `text`, with byte offsets, deduplicated per offset.
pub fn slx_tokens(text: &str) -> Vec<(usize, String)> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find("SLX_") {
        let at = from + pos;
        // Only the left boundary is checked — `SLX_` is a prefix, and the
        // token continues through uppercase/digits/underscores.
        let mut end = at + 4;
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        if (at == 0 || !is_word(bytes[at - 1])) && end > at + 4 {
            out.push((at, text[at..end].trim_end_matches('_').to_string()));
        }
        from = end.max(at + 1);
    }
    out
}

/// Byte offsets where `env::var` / `env::var_os` is called (path
/// whitespace tolerated).
pub fn env_var_reads(text: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for at in token_offsets(text, "env") {
        let mut j = at + 3;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if !text[j..].starts_with("::") {
            continue;
        }
        j += 2;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if text[j..].starts_with("var_os")
            || (text[j..].starts_with("var") && !is_word(*bytes.get(j + 3).unwrap_or(&b' ')))
        {
            out.push(at);
        }
    }
    out
}

/// The integer value of `const NAME: <ty> = <n>;` in `text`, if present.
pub fn const_value(text: &str, name: &str) -> Option<u64> {
    for at in token_offsets(text, name) {
        let rest = &text[at + name.len()..];
        // Expect `: <ty> = <digits>` with flexible whitespace; skip
        // non-definition references (no `=` before the next `;`).
        let semi = rest.find(';')?;
        let clause = &rest[..semi];
        let eq = match clause.find('=') {
            Some(e) => e,
            None => continue,
        };
        let value: String = clause[eq + 1..]
            .chars()
            .filter(|c| c.is_ascii_digit())
            .collect();
        if !value.is_empty() {
            // Definitions start with a type ascription.
            if clause.trim_start().starts_with(':') {
                return value.parse().ok();
            }
        }
    }
    None
}

/// Skips whitespace from `i`.
pub fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Reads an identifier starting at `i`, returning `(ident, next)`.
pub fn read_ident(text: &str, i: usize) -> (String, usize) {
    let bytes = text.as_bytes();
    let mut j = i;
    while j < bytes.len() && is_word(bytes[j]) {
        j += 1;
    }
    (text[i..j].to_string(), j)
}

/// Given `i` at an opening delimiter in `open`/`close` (e.g. `<`/`>`),
/// returns the offset just past its matching close.
pub fn skip_matched(bytes: &[u8], mut i: usize, open: u8, close: u8) -> usize {
    let mut depth = 0usize;
    while i < bytes.len() {
        if bytes[i] == open {
            depth += 1;
        } else if bytes[i] == close {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Collapses whitespace runs to single spaces and trims — the
/// normalization used for manifest-recorded types and hashed bodies.
pub fn normalize_ws(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_ws = true; // leading whitespace is dropped
    for c in text.chars() {
        if c.is_whitespace() {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            out.push(c);
            in_ws = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// FNV-1a over `text`, rendered as fixed-width hex — the manifest's
/// body-drift fingerprint.
pub fn fnv_hex(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_word_bounded() {
        assert_eq!(
            token_offsets("HashMap DetHashMap xHashMapx", "HashMap"),
            vec![0]
        );
        assert!(has_token("use std::collections::HashSet;", "HashSet"));
        assert!(!has_token("DetHashSet", "HashSet"));
    }

    #[test]
    fn slx_tokens_extend_right() {
        let found = slx_tokens("set SLX_ENGINE_THREADS or SLX_X2; not XSLX_Y");
        let names: Vec<&str> = found.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["SLX_ENGINE_THREADS", "SLX_X2"]);
    }

    #[test]
    fn env_reads_spot_var_and_var_os() {
        assert_eq!(env_var_reads("std::env::var(\"A\")").len(), 1);
        assert_eq!(env_var_reads("std::env::var_os (\"A\")").len(), 1);
        assert_eq!(env_var_reads("std::env::temp_dir()").len(), 0);
        assert_eq!(env_var_reads("environment::variable()").len(), 0);
    }

    #[test]
    fn const_values_parse_definitions_only() {
        let text = "pub const FORMAT_VERSION: u64 = 2;\nuse x::FORMAT_VERSION;\n";
        assert_eq!(const_value(text, "FORMAT_VERSION"), Some(2));
        assert_eq!(
            const_value("let x = FORMAT_VERSION;", "FORMAT_VERSION"),
            None
        );
    }

    #[test]
    fn normalization_and_hashing_are_stable() {
        assert_eq!(normalize_ws("  a \n\t b  "), "a b");
        assert_eq!(fnv_hex("abc"), fnv_hex("abc"));
        assert_ne!(fnv_hex("abc"), fnv_hex("abd"));
    }
}
