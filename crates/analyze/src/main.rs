//! CLI: `slx-analyze [--root <dir>] [--bless]`.
//!
//! Exit 0 on a clean tree, 1 with one finding per line on stderr
//! otherwise, 2 on usage/environment errors. `--bless` regenerates
//! `WIRE_MANIFEST.txt` from the current sources before checking — the
//! explicit acknowledgment of an audited wire change.

use slx_analyze::Workspace;

fn main() {
    let mut root = std::path::PathBuf::from(".");
    let mut bless = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bless" => bless = true,
            "--root" => match args.next() {
                Some(dir) => root = dir.into(),
                None => usage(),
            },
            _ => usage(),
        }
    }
    // `cargo run -p slx-analyze` runs from the workspace root; fall back
    // to the manifest's grandparent so the binary also works from
    // anywhere inside the checkout.
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "slx-analyze: no Cargo.toml under {} — pass --root <workspace>",
            root.display()
        );
        std::process::exit(2);
    }

    let workspace = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("slx-analyze: cannot load sources: {e}");
            std::process::exit(2);
        }
    };
    if bless {
        if let Err(e) = workspace.bless() {
            eprintln!("slx-analyze: bless failed: {e}");
            std::process::exit(2);
        }
        eprintln!("slx-analyze: wrote WIRE_MANIFEST.txt");
    }
    let findings = workspace.run_all();
    if findings.is_empty() {
        eprintln!(
            "slx-analyze: clean — {} files, wire manifest + determinism lints + concurrency audit",
            workspace.files.len()
        );
        return;
    }
    for finding in &findings {
        eprintln!("{finding}");
    }
    eprintln!("slx-analyze: {} finding(s)", findings.len());
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!("usage: slx-analyze [--root <dir>] [--bless]");
    std::process::exit(2);
}
