//! The counterexample safety property `S` of Section 5.3.

use slx_history::{
    Action, History, Operation, ProcessId, Response, TransactionStatus, TxnId, Value,
};

use crate::opacity::Opacity;
use crate::property::SafetyProperty;

/// Property `S` (Section 5.3): opacity **plus** the forced-abort rule —
/// for any three or more concurrent transactions `T1, T2, T3, ...` executed
/// by distinct processes such that
///
/// 1. there is a `t` with each `Ti` being the `t`-th transaction of its
///    process, and
/// 2. each `Ti` invokes `tryC()` after at least two other transactions of
///    the group received a response for their `start()`,
///
/// the transactions of the group must all abort (equivalently: none of
/// them may commit — committing is the irrevocable "bad event").
///
/// This is the property for which the paper shows that *within*
/// (l,k)-freedom, both (1,3)-freedom and (2,2)-freedom exclude `S` while
/// (1,2)-freedom does not (Algorithm I(1,2) implements it), so no weakest
/// excluding (l,k)-freedom exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropertyS {
    opacity: Opacity,
}

/// Per-transaction metadata needed by the rule: positions of the `start()`
/// response and the `tryC()` invocation within the history.
#[derive(Debug, Clone)]
struct TxnMeta {
    id: TxnId,
    start_index: usize,
    start_resp_index: Option<usize>,
    tryc_invoke_index: Option<usize>,
    end_index: Option<usize>,
    status: TransactionStatus,
}

impl PropertyS {
    /// Checker with all transactional variables initially `init`.
    pub fn new(init: Value) -> Self {
        PropertyS {
            opacity: Opacity::new(init),
        }
    }

    /// Whether the forced-abort rule (requirement 2 of `S`) holds, in
    /// isolation from opacity. Exposed for the adversary analyses, which
    /// reason about the rule separately.
    pub fn abort_rule_holds(&self, h: &History) -> bool {
        let metas = Self::metas(h);
        // Group transactions by per-process sequence number.
        let max_seq = metas.iter().map(|m| m.id.seq).max().unwrap_or(0);
        for t in 1..=max_seq {
            let group: Vec<&TxnMeta> = metas.iter().filter(|m| m.id.seq == t).collect();
            if group.len() < 3 {
                continue;
            }
            // All subsets of size >= 3 (distinct processes are guaranteed:
            // one transaction per process per sequence number).
            let n = group.len();
            for mask in 0u32..(1 << n) {
                if (mask.count_ones() as usize) < 3 {
                    continue;
                }
                let subset: Vec<&TxnMeta> = (0..n)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| group[i])
                    .collect();
                if Self::conditions_hold(&subset) {
                    // The group must be (and remain) commit-free.
                    if subset
                        .iter()
                        .any(|m| m.status == TransactionStatus::Committed)
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn conditions_hold(subset: &[&TxnMeta]) -> bool {
        // Pairwise concurrent.
        for (i, a) in subset.iter().enumerate() {
            for b in subset.iter().skip(i + 1) {
                let a_before_b = a.end_index.is_some_and(|e| e < b.start_index);
                let b_before_a = b.end_index.is_some_and(|e| e < a.start_index);
                if a_before_b || b_before_a {
                    return false;
                }
            }
        }
        // Each member invoked tryC after >= 2 other members' start responses.
        for m in subset {
            let Some(tc) = m.tryc_invoke_index else {
                return false;
            };
            let witnesses = subset
                .iter()
                .filter(|o| o.id != m.id)
                .filter(|o| o.start_resp_index.is_some_and(|s| s < tc))
                .count();
            if witnesses < 2 {
                return false;
            }
        }
        true
    }

    fn metas(h: &History) -> Vec<TxnMeta> {
        let mut metas: Vec<TxnMeta> = Vec::new();
        let mut open: std::collections::BTreeMap<ProcessId, usize> = Default::default();
        let mut next_seq: std::collections::BTreeMap<ProcessId, usize> = Default::default();
        // Whether the open transaction's most recent invocation awaits its
        // start response / is the tryC.
        let mut awaiting_start: std::collections::BTreeMap<ProcessId, bool> = Default::default();
        for (i, a) in h.actions().iter().enumerate() {
            let p = a.proc();
            match a {
                Action::Invoke { op, .. } => match op {
                    Operation::TxStart => {
                        let seq = next_seq.entry(p).or_insert(1);
                        let id = TxnId::new(p, *seq);
                        *seq += 1;
                        open.insert(p, metas.len());
                        awaiting_start.insert(p, true);
                        metas.push(TxnMeta {
                            id,
                            start_index: i,
                            start_resp_index: None,
                            tryc_invoke_index: None,
                            end_index: None,
                            status: TransactionStatus::Live,
                        });
                    }
                    Operation::TxCommit => {
                        if let Some(&mi) = open.get(&p) {
                            metas[mi].tryc_invoke_index = Some(i);
                        }
                    }
                    _ => {}
                },
                Action::Respond { resp, .. } => {
                    if let Some(&mi) = open.get(&p) {
                        if awaiting_start.get(&p).copied().unwrap_or(false) {
                            metas[mi].start_resp_index = Some(i);
                            awaiting_start.insert(p, false);
                        }
                        match resp {
                            Response::Committed => {
                                metas[mi].status = TransactionStatus::Committed;
                                metas[mi].end_index = Some(i);
                                open.remove(&p);
                            }
                            Response::Aborted => {
                                metas[mi].status = TransactionStatus::Aborted;
                                metas[mi].end_index = Some(i);
                                open.remove(&p);
                            }
                            _ => {}
                        }
                    }
                }
                Action::Crash { .. } => {}
            }
        }
        metas
    }
}

impl SafetyProperty for PropertyS {
    fn name(&self) -> &str {
        "property S (opacity + equal-timestamp abort rule)"
    }

    fn allows(&self, h: &History) -> bool {
        self.abort_rule_holds(h) && self.opacity.allows(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::VarId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }

    /// The §5.3 adversary pattern: three processes start their t-th
    /// transactions concurrently, all receive start responses, then all
    /// invoke tryC. `outcomes[i]` is the tryC response of process i.
    fn triple_round(outcomes: [Response; 3]) -> History {
        let mut acts = Vec::new();
        for i in 0..3 {
            acts.push(Action::invoke(p(i), Operation::TxStart));
        }
        for i in 0..3 {
            acts.push(Action::respond(p(i), Response::Ok));
        }
        for i in 0..3 {
            acts.push(Action::invoke(p(i), Operation::TxCommit));
        }
        for (i, r) in outcomes.iter().enumerate() {
            acts.push(Action::respond(p(i), *r));
        }
        History::from_actions(acts)
    }

    #[test]
    fn all_aborted_round_allowed() {
        let h = triple_round([Response::Aborted, Response::Aborted, Response::Aborted]);
        let s = PropertyS::new(v(0));
        assert!(s.abort_rule_holds(&h));
        assert!(s.allows(&h));
    }

    #[test]
    fn commit_in_synchronized_round_rejected() {
        let h = triple_round([Response::Committed, Response::Aborted, Response::Aborted]);
        let s = PropertyS::new(v(0));
        assert!(!s.abort_rule_holds(&h));
        assert!(!s.allows(&h));
    }

    #[test]
    fn two_concurrent_transactions_may_commit() {
        // Only two processes: rule does not apply.
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
            Action::respond(p(0), Response::Committed),
            Action::invoke(p(1), Operation::TxCommit),
            Action::respond(p(1), Response::Aborted),
        ]);
        let s = PropertyS::new(v(0));
        assert!(s.abort_rule_holds(&h));
        assert!(s.allows(&h));
    }

    #[test]
    fn early_commit_request_escapes_rule() {
        // p1 invokes tryC before the other two receive start responses:
        // condition (2) fails for p1, so the triple is not forced to abort.
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
            Action::invoke(p(1), Operation::TxStart),
            Action::invoke(p(2), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::respond(p(2), Response::Ok),
            Action::respond(p(0), Response::Committed),
            Action::invoke(p(1), Operation::TxCommit),
            Action::respond(p(1), Response::Aborted),
            Action::invoke(p(2), Operation::TxCommit),
            Action::respond(p(2), Response::Aborted),
        ]);
        assert!(PropertyS::new(v(0)).abort_rule_holds(&h));
    }

    #[test]
    fn different_sequence_numbers_escape_rule() {
        // p1 runs one committed transaction first, so its *second*
        // transaction meets the others' first: no common t, rule silent.
        let mut acts = vec![
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
            Action::respond(p(0), Response::Committed),
        ];
        // Now p1 seq 2, p2 seq 1, p3 seq 1 all concurrent and synchronized.
        for i in 0..3 {
            acts.push(Action::invoke(p(i), Operation::TxStart));
        }
        for i in 0..3 {
            acts.push(Action::respond(p(i), Response::Ok));
        }
        for i in 0..3 {
            acts.push(Action::invoke(p(i), Operation::TxCommit));
        }
        acts.push(Action::respond(p(0), Response::Committed));
        acts.push(Action::respond(p(1), Response::Aborted));
        acts.push(Action::respond(p(2), Response::Aborted));
        let h = History::from_actions(acts);
        assert!(PropertyS::new(v(0)).abort_rule_holds(&h));
    }

    #[test]
    fn non_concurrent_triple_escapes_rule() {
        // Three same-seq transactions but p1's completes before p3 starts.
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
            Action::respond(p(0), Response::Committed),
            Action::invoke(p(2), Operation::TxStart),
            Action::respond(p(2), Response::Ok),
            Action::invoke(p(1), Operation::TxCommit),
            Action::respond(p(1), Response::Aborted),
            Action::invoke(p(2), Operation::TxCommit),
            Action::respond(p(2), Response::Aborted),
        ]);
        assert!(PropertyS::new(v(0)).abort_rule_holds(&h));
    }

    #[test]
    fn rule_applies_among_four_processes() {
        let mut acts = Vec::new();
        for i in 0..4 {
            acts.push(Action::invoke(p(i), Operation::TxStart));
        }
        for i in 0..4 {
            acts.push(Action::respond(p(i), Response::Ok));
        }
        for i in 0..4 {
            acts.push(Action::invoke(p(i), Operation::TxCommit));
        }
        acts.push(Action::respond(p(3), Response::Committed));
        let h = History::from_actions(acts);
        assert!(!PropertyS::new(v(0)).abort_rule_holds(&h));
    }

    #[test]
    fn live_synchronized_round_still_allowed() {
        // All three invoked tryC but no responses yet: no commit, rule holds
        // (prefix-closedness requires allowing this prefix).
        let mut acts = Vec::new();
        for i in 0..3 {
            acts.push(Action::invoke(p(i), Operation::TxStart));
        }
        for i in 0..3 {
            acts.push(Action::respond(p(i), Response::Ok));
        }
        for i in 0..3 {
            acts.push(Action::invoke(p(i), Operation::TxCommit));
        }
        let h = History::from_actions(acts);
        let s = PropertyS::new(v(0));
        assert!(s.abort_rule_holds(&h));
        assert!(s.allows(&h));
    }

    #[test]
    fn property_s_includes_opacity() {
        // Opacity violation alone breaks S.
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxRead(VarId::new(0))),
            Action::respond(p(0), Response::ValueReturned(v(42))),
            Action::invoke(p(0), Operation::TxCommit),
            Action::respond(p(0), Response::Committed),
        ]);
        let s = PropertyS::new(v(0));
        assert!(s.abort_rule_holds(&h));
        assert!(!s.allows(&h));
    }

    #[test]
    fn prefix_monotone_on_samples() {
        let s = PropertyS::new(v(0));
        let h = triple_round([Response::Aborted, Response::Aborted, Response::Aborted]);
        assert!(s.prefix_monotone_on(&h));
    }
}
