//! A linearizability checker (Herlihy & Wing), in the Wing & Gong
//! enumerate-and-search style.

use std::collections::HashSet; // det-lint: allow (membership-only memo; iteration order never observed)
use std::hash::Hash;

use slx_history::{History, OpCall};

use crate::property::SafetyProperty;
use crate::spec::SeqSpec;

/// Linearizability with respect to a sequential specification.
///
/// A finite history is allowed iff there is a *linearization*: a sequential
/// ordering of all completed calls plus some subset of the pending calls
/// that (a) respects real-time precedence, (b) is legal for the
/// specification, and (c) gives every completed call its actual response.
/// Pending calls may take effect with any specification-allowed response or
/// not take effect at all.
///
/// Linearizability is prefix-closed and limit-closed, hence a safety
/// property in the sense of Definition 3.1; the paper's consensus corollary
/// uses the weaker agreement-and-validity instead, and this checker is what
/// relates the two in tests (linearizability w.r.t. [`crate::ConsensusSpec`]
/// implies [`crate::ConsensusSafety`]).
///
/// The search is exponential in the number of overlapping calls; it is
/// intended for the small-scope histories produced by the explorer and the
/// property tests (where exhaustiveness, not speed, is the point).
#[derive(Debug, Clone)]
pub struct Linearizability<S> {
    spec: S,
}

impl<S: SeqSpec> Linearizability<S> {
    /// Creates the checker for a specification.
    pub fn new(spec: S) -> Self {
        Linearizability { spec }
    }

    /// The underlying specification.
    pub fn spec(&self) -> &S {
        &self.spec
    }

    /// Whether `h` is linearizable w.r.t. the specification.
    pub fn is_linearizable(&self, h: &History) -> bool
    where
        S::State: Hash,
    {
        let calls = h.calls();
        if calls.len() > 63 {
            // The bitmask search handles up to 63 calls; histories at
            // checker scope are far smaller.
            panic!("linearizability checker supports at most 63 calls");
        }
        let pending: Vec<usize> = calls
            .iter()
            .enumerate()
            .filter(|(_, c)| c.resp.is_none())
            .map(|(i, _)| i)
            .collect();
        // Choose, for each pending call, whether it takes effect.
        let subsets = 1u64 << pending.len();
        for subset in 0..subsets {
            let mut dropped = vec![false; calls.len()];
            for (bit, &ci) in pending.iter().enumerate() {
                if subset & (1 << bit) == 0 {
                    dropped[ci] = true;
                }
            }
            let mut memo = HashSet::new(); // det-lint: allow (membership-only memo; iteration order never observed)
            if self.search(&calls, &dropped, 0, &self.spec.init(), &mut memo) {
                return true;
            }
        }
        false
    }

    /// DFS over linearization orders. `done` is the bitmask of calls already
    /// linearized (dropped calls are pre-marked done).
    fn search(
        &self,
        calls: &[OpCall],
        dropped: &[bool],
        done_init: u64,
        state: &S::State,
        memo: &mut HashSet<(u64, S::State)>, // det-lint: allow (membership-only memo; iteration order never observed)
    ) -> bool
    where
        S::State: Hash,
    {
        let mut done = done_init;
        for (i, d) in dropped.iter().enumerate() {
            if *d {
                done |= 1 << i;
            }
        }
        self.dfs(calls, done, state, memo)
    }

    fn dfs(
        &self,
        calls: &[OpCall],
        done: u64,
        state: &S::State,
        memo: &mut HashSet<(u64, S::State)>, // det-lint: allow (membership-only memo; iteration order never observed)
    ) -> bool
    where
        S::State: Hash,
    {
        if done == (1u64 << calls.len()) - 1 {
            return true;
        }
        if !memo.insert((done, state.clone())) {
            return false;
        }
        for (i, c) in calls.iter().enumerate() {
            if done & (1 << i) != 0 {
                continue;
            }
            // Real-time: c may be next only if no other remaining call
            // completed before c was invoked.
            let blocked = calls.iter().enumerate().any(|(j, d)| {
                j != i
                    && done & (1 << j) == 0
                    && d.respond_index.is_some_and(|rj| rj < c.invoke_index)
            });
            if blocked {
                continue;
            }
            for (next_state, resp) in self.spec.apply(state, c.op) {
                let response_ok = match c.resp {
                    Some(actual) => actual == resp,
                    None => true, // pending call may take any legal response
                };
                if response_ok && self.dfs(calls, done | (1 << i), &next_state, memo) {
                    return true;
                }
            }
        }
        false
    }
}

impl<S: SeqSpec> SafetyProperty for Linearizability<S>
where
    S::State: Hash,
{
    fn name(&self) -> &str {
        "linearizability"
    }

    fn allows(&self, h: &History) -> bool {
        self.is_linearizable(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ConsensusSpec, RegisterSpec};
    use crate::ConsensusSafety;
    use slx_history::{Action, Operation, ProcessId, Response, Value, VarId};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }
    fn x0() -> VarId {
        VarId::new(0)
    }

    fn reg_checker() -> Linearizability<RegisterSpec> {
        Linearizability::new(RegisterSpec::new(1, v(0)))
    }

    #[test]
    fn sequential_register_history_linearizable() {
        let h = History::from_actions([
            Action::invoke(p(0), Operation::Write(x0(), v(1))),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(1), Operation::Read(x0())),
            Action::respond(p(1), Response::ValueReturned(v(1))),
        ]);
        assert!(reg_checker().is_linearizable(&h));
    }

    #[test]
    fn stale_read_after_write_not_linearizable() {
        let h = History::from_actions([
            Action::invoke(p(0), Operation::Write(x0(), v(1))),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(1), Operation::Read(x0())),
            Action::respond(p(1), Response::ValueReturned(v(0))),
        ]);
        assert!(!reg_checker().is_linearizable(&h));
    }

    #[test]
    fn overlapping_read_may_return_either_value() {
        // Write overlaps the read: both 0 and 1 are linearizable results.
        for read_val in [0, 1] {
            let h = History::from_actions([
                Action::invoke(p(0), Operation::Write(x0(), v(1))),
                Action::invoke(p(1), Operation::Read(x0())),
                Action::respond(p(1), Response::ValueReturned(v(read_val))),
                Action::respond(p(0), Response::Ok),
            ]);
            assert!(reg_checker().is_linearizable(&h), "read {read_val}");
        }
        // But 7 is not.
        let h = History::from_actions([
            Action::invoke(p(0), Operation::Write(x0(), v(1))),
            Action::invoke(p(1), Operation::Read(x0())),
            Action::respond(p(1), Response::ValueReturned(v(7))),
            Action::respond(p(0), Response::Ok),
        ]);
        assert!(!reg_checker().is_linearizable(&h));
    }

    #[test]
    fn pending_write_may_take_effect() {
        // The write never responds, but the read sees it: linearizable by
        // including the pending call.
        let h = History::from_actions([
            Action::invoke(p(0), Operation::Write(x0(), v(1))),
            Action::invoke(p(1), Operation::Read(x0())),
            Action::respond(p(1), Response::ValueReturned(v(1))),
        ]);
        assert!(reg_checker().is_linearizable(&h));
    }

    #[test]
    fn pending_write_may_be_dropped() {
        let h = History::from_actions([
            Action::invoke(p(0), Operation::Write(x0(), v(1))),
            Action::invoke(p(1), Operation::Read(x0())),
            Action::respond(p(1), Response::ValueReturned(v(0))),
        ]);
        assert!(reg_checker().is_linearizable(&h));
    }

    #[test]
    fn real_time_order_enforced_between_nonoverlapping_ops() {
        // read completes strictly before the write begins, yet returns the
        // written value: not linearizable.
        let h = History::from_actions([
            Action::invoke(p(1), Operation::Read(x0())),
            Action::respond(p(1), Response::ValueReturned(v(1))),
            Action::invoke(p(0), Operation::Write(x0(), v(1))),
            Action::respond(p(0), Response::Ok),
        ]);
        assert!(!reg_checker().is_linearizable(&h));
    }

    #[test]
    fn consensus_linearizability_implies_agreement_validity() {
        let lin = Linearizability::new(ConsensusSpec::new());
        let histories = [
            History::from_actions([
                Action::invoke(p(0), Operation::Propose(v(1))),
                Action::invoke(p(1), Operation::Propose(v(2))),
                Action::respond(p(0), Response::Decided(v(1))),
                Action::respond(p(1), Response::Decided(v(1))),
            ]),
            History::from_actions([
                Action::invoke(p(0), Operation::Propose(v(1))),
                Action::respond(p(0), Response::Decided(v(1))),
                Action::invoke(p(1), Operation::Propose(v(2))),
                Action::respond(p(1), Response::Decided(v(2))),
            ]),
        ];
        let safety = ConsensusSafety::new();
        for h in &histories {
            if lin.is_linearizable(h) {
                assert!(safety.allows(h), "linearizable but unsafe: {h}");
            }
        }
        // The second history is valid-but-disagreeing: not linearizable.
        assert!(!lin.is_linearizable(&histories[1]));
    }

    #[test]
    fn decided_before_any_overlap_must_be_first_proposal() {
        let lin = Linearizability::new(ConsensusSpec::new());
        // p1 proposes 1 and decides 2 while p2's propose(2) is concurrent:
        // linearizable (p2's propose linearizes first).
        let h = History::from_actions([
            Action::invoke(p(1), Operation::Propose(v(2))),
            Action::invoke(p(0), Operation::Propose(v(1))),
            Action::respond(p(0), Response::Decided(v(2))),
        ]);
        assert!(lin.is_linearizable(&h));
        // Without p2's proposal, deciding 2 is impossible.
        let h2 = History::from_actions([
            Action::invoke(p(0), Operation::Propose(v(1))),
            Action::respond(p(0), Response::Decided(v(2))),
        ]);
        assert!(!lin.is_linearizable(&h2));
    }

    #[test]
    fn empty_history_linearizable() {
        assert!(reg_checker().is_linearizable(&History::new()));
    }

    #[test]
    fn prefix_monotone_on_samples() {
        let checker = reg_checker();
        let h = History::from_actions([
            Action::invoke(p(0), Operation::Write(x0(), v(1))),
            Action::invoke(p(1), Operation::Read(x0())),
            Action::respond(p(1), Response::ValueReturned(v(1))),
            Action::respond(p(0), Response::Ok),
        ]);
        assert!(checker.prefix_monotone_on(&h));
    }
}
