//! Agreement and validity: the safety property of consensus.

use slx_history::{Action, History, Operation, Response, Value};

use crate::property::SafetyProperty;

/// The consensus safety property of the paper's Section 4.1 corollary:
/// **agreement** (all processes decide the same value) and **validity**
/// (the decided value was proposed by some process).
///
/// Also enforces the object-type discipline that a `Decided` response only
/// answers a `Propose` invocation; histories mixing in other operations are
/// rejected as outside the consensus object type.
///
/// # Examples
///
/// ```
/// use slx_history::{Action, History, Operation, ProcessId, Response, Value};
/// use slx_safety::{ConsensusSafety, SafetyProperty};
///
/// let p1 = ProcessId::new(0);
/// let h = History::from_actions([
///     Action::invoke(p1, Operation::Propose(Value::new(4))),
///     Action::respond(p1, Response::Decided(Value::new(4))),
/// ]);
/// assert!(ConsensusSafety::new().allows(&h));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsensusSafety {
    _priv: (),
}

impl ConsensusSafety {
    /// Creates the agreement-and-validity checker.
    pub fn new() -> Self {
        ConsensusSafety::default()
    }
}

impl SafetyProperty for ConsensusSafety {
    fn name(&self) -> &str {
        "consensus agreement and validity"
    }

    fn allows(&self, h: &History) -> bool {
        let mut proposed: Vec<Value> = Vec::new();
        let mut decided: Option<Value> = None;
        for a in h.iter() {
            match a {
                Action::Invoke { op, .. } => match op {
                    Operation::Propose(v) => proposed.push(*v),
                    _ => return false,
                },
                Action::Respond { resp, .. } => match resp {
                    Response::Decided(v) => {
                        // Validity: decided value must already be proposed.
                        if !proposed.contains(v) {
                            return false;
                        }
                        // Agreement: all decisions equal.
                        match decided {
                            None => decided = Some(*v),
                            Some(d) if d == *v => {}
                            Some(_) => return false,
                        }
                    }
                    _ => return false,
                },
                Action::Crash { .. } => {}
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::ProcessId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }

    fn propose(i: usize, val: i64) -> Action {
        Action::invoke(p(i), Operation::Propose(v(val)))
    }
    fn decide(i: usize, val: i64) -> Action {
        Action::respond(p(i), Response::Decided(v(val)))
    }

    #[test]
    fn agreement_holds() {
        let s = ConsensusSafety::new();
        let h = History::from_actions([propose(0, 1), propose(1, 2), decide(0, 2), decide(1, 2)]);
        assert!(s.allows(&h));
    }

    #[test]
    fn agreement_violated() {
        let s = ConsensusSafety::new();
        let h = History::from_actions([propose(0, 1), propose(1, 2), decide(0, 1), decide(1, 2)]);
        assert!(!s.allows(&h));
        let viol = s.check(&h).unwrap_err();
        assert_eq!(viol.prefix_len, 4);
    }

    #[test]
    fn validity_violated() {
        let s = ConsensusSafety::new();
        let h = History::from_actions([propose(0, 1), decide(0, 9)]);
        assert!(!s.allows(&h));
    }

    #[test]
    fn validity_requires_prior_proposal() {
        // Even if another process proposes 2 *later*, a decision of 2 before
        // any proposal of 2 is invalid (the checker is a prefix property).
        let s = ConsensusSafety::new();
        let h = History::from_actions([propose(0, 1), decide(0, 2), propose(1, 2)]);
        assert!(!s.allows(&h));
    }

    #[test]
    fn crashes_are_neutral() {
        let s = ConsensusSafety::new();
        let h = History::from_actions([propose(0, 1), Action::crash(p(0))]);
        assert!(s.allows(&h));
    }

    #[test]
    fn rejects_non_consensus_operations() {
        let s = ConsensusSafety::new();
        let h = History::from_actions([Action::invoke(p(0), Operation::TxStart)]);
        assert!(!s.allows(&h));
        let h2 = History::from_actions([propose(0, 1), Action::respond(p(0), Response::Ok)]);
        assert!(!s.allows(&h2));
    }

    #[test]
    fn prefix_monotone() {
        let s = ConsensusSafety::new();
        let h = History::from_actions([propose(0, 1), propose(1, 2), decide(0, 2), decide(1, 2)]);
        assert!(s.prefix_monotone_on(&h));
    }

    #[test]
    fn empty_history_allowed() {
        assert!(ConsensusSafety::new().allows(&History::new()));
    }
}
