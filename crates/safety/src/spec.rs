//! Sequential specifications `Seq ⊆ Inv × St × St × Res` of object types.

use slx_history::{Operation, Response, Value, VarId};

/// A sequential specification of an object type, in the relational form of
/// the paper's `Seq ⊆ Inv × St × St × Res`: applying an invocation in a
/// state yields a set of (next state, response) pairs (usually a singleton
/// for deterministic objects).
pub trait SeqSpec {
    /// The object state `St`.
    type State: Clone + Eq + std::fmt::Debug;

    /// The initial state.
    fn init(&self) -> Self::State;

    /// All `(state', response)` pairs allowed by `Seq` for `op` in `state`.
    /// An empty vector means `op` is not applicable in `state` (no response
    /// is legal).
    fn apply(&self, state: &Self::State, op: Operation) -> Vec<(Self::State, Response)>;
}

/// Sequential specification of an array of read/write registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterSpec {
    vars: usize,
    init: Value,
}

impl RegisterSpec {
    /// `vars` registers, each initialized to `init`.
    pub fn new(vars: usize, init: Value) -> Self {
        RegisterSpec { vars, init }
    }
}

impl SeqSpec for RegisterSpec {
    type State = Vec<Value>;

    fn init(&self) -> Self::State {
        vec![self.init; self.vars]
    }

    fn apply(&self, state: &Self::State, op: Operation) -> Vec<(Self::State, Response)> {
        match op {
            Operation::Read(x) if x.index() < self.vars => {
                vec![(state.clone(), Response::ValueReturned(state[x.index()]))]
            }
            Operation::Write(x, v) if x.index() < self.vars => {
                let mut s = state.clone();
                s[x.index()] = v;
                vec![(s, Response::Ok)]
            }
            _ => Vec::new(),
        }
    }
}

/// Sequential specification of a consensus object: the first `propose`
/// fixes the decision; every propose returns the fixed decision.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsensusSpec {
    _priv: (),
}

impl ConsensusSpec {
    /// Creates the consensus specification.
    pub fn new() -> Self {
        ConsensusSpec::default()
    }
}

impl SeqSpec for ConsensusSpec {
    type State = Option<Value>;

    fn init(&self) -> Self::State {
        None
    }

    fn apply(&self, state: &Self::State, op: Operation) -> Vec<(Self::State, Response)> {
        match op {
            Operation::Propose(v) => match state {
                None => vec![(Some(v), Response::Decided(v))],
                Some(d) => vec![(Some(*d), Response::Decided(*d))],
            },
            _ => Vec::new(),
        }
    }
}

/// Sequential specification of a test-and-set bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TasSpec {
    _priv: (),
}

impl TasSpec {
    /// Creates the test-and-set specification.
    pub fn new() -> Self {
        TasSpec::default()
    }
}

impl SeqSpec for TasSpec {
    type State = bool;

    fn init(&self) -> Self::State {
        false
    }

    fn apply(&self, state: &Self::State, op: Operation) -> Vec<(Self::State, Response)> {
        match op {
            Operation::TestAndSet => vec![(true, Response::Flag(*state))],
            _ => Vec::new(),
        }
    }
}

/// Sequential specification of a compare-and-swap object over [`Value`]s
/// (readable via [`Operation::Read`] of variable `x1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CasSpec {
    init: Value,
}

impl CasSpec {
    /// CAS object initialized to `init`.
    pub fn new(init: Value) -> Self {
        CasSpec { init }
    }
}

impl SeqSpec for CasSpec {
    type State = Value;

    fn init(&self) -> Self::State {
        self.init
    }

    fn apply(&self, state: &Self::State, op: Operation) -> Vec<(Self::State, Response)> {
        match op {
            Operation::CompareAndSwap { expected, new } => {
                if *state == expected {
                    vec![(new, Response::Flag(true))]
                } else {
                    vec![(*state, Response::Flag(false))]
                }
            }
            Operation::Read(x) if x == VarId::new(0) => {
                vec![(*state, Response::ValueReturned(*state))]
            }
            _ => Vec::new(),
        }
    }
}

/// Sequential specification of a fetch-and-add counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSpec {
    init: Value,
}

impl CounterSpec {
    /// Counter initialized to `init`.
    pub fn new(init: Value) -> Self {
        CounterSpec { init }
    }
}

impl SeqSpec for CounterSpec {
    type State = Value;

    fn init(&self) -> Self::State {
        self.init
    }

    fn apply(&self, state: &Self::State, op: Operation) -> Vec<(Self::State, Response)> {
        match op {
            Operation::FetchAdd(delta) => vec![(
                Value::new(state.raw() + delta.raw()),
                Response::ValueReturned(*state),
            )],
            Operation::Read(x) if x == VarId::new(0) => {
                vec![(*state, Response::ValueReturned(*state))]
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: i64) -> Value {
        Value::new(x)
    }

    #[test]
    fn register_spec_read_write() {
        let spec = RegisterSpec::new(2, v(0));
        let s0 = spec.init();
        let (s1, r) = spec.apply(&s0, Operation::Write(VarId::new(1), v(5)))[0].clone();
        assert_eq!(r, Response::Ok);
        let (_, r2) = spec.apply(&s1, Operation::Read(VarId::new(1)))[0].clone();
        assert_eq!(r2, Response::ValueReturned(v(5)));
        assert!(spec.apply(&s1, Operation::Read(VarId::new(7))).is_empty());
        assert!(spec.apply(&s1, Operation::TxStart).is_empty());
    }

    #[test]
    fn consensus_spec_first_proposal_wins() {
        let spec = ConsensusSpec::new();
        let s0 = spec.init();
        let (s1, r1) = spec.apply(&s0, Operation::Propose(v(3)))[0];
        assert_eq!(r1, Response::Decided(v(3)));
        let (_, r2) = spec.apply(&s1, Operation::Propose(v(9)))[0];
        assert_eq!(r2, Response::Decided(v(3)));
    }

    #[test]
    fn tas_spec_sets_once() {
        let spec = TasSpec::new();
        let (s1, r1) = spec.apply(&spec.init(), Operation::TestAndSet)[0];
        assert_eq!(r1, Response::Flag(false));
        let (_, r2) = spec.apply(&s1, Operation::TestAndSet)[0];
        assert_eq!(r2, Response::Flag(true));
    }

    #[test]
    fn cas_spec_success_and_failure() {
        let spec = CasSpec::new(v(0));
        let op = Operation::CompareAndSwap {
            expected: v(0),
            new: v(1),
        };
        let (s1, r1) = spec.apply(&spec.init(), op)[0];
        assert_eq!(r1, Response::Flag(true));
        let (s2, r2) = spec.apply(&s1, op)[0];
        assert_eq!(r2, Response::Flag(false));
        assert_eq!(s2, v(1));
    }

    #[test]
    fn counter_spec_fetch_add() {
        let spec = CounterSpec::new(v(10));
        let (s1, r1) = spec.apply(&spec.init(), Operation::FetchAdd(v(5)))[0];
        assert_eq!(r1, Response::ValueReturned(v(10)));
        assert_eq!(s1, v(15));
    }
}
