//! Safety properties of shared objects (Definition 3.1).
//!
//! A safety property is a non-empty, prefix-closed, limit-closed set of
//! well-formed histories. Finite membership is decidable, and prefix
//! closure means a *checker over finite histories* determines the property
//! completely: an implementation ensures `S` iff every finite history it
//! produces is allowed. This crate provides the [`SafetyProperty`] trait
//! plus every concrete property the paper's results are instantiated on:
//!
//! - consensus **agreement and validity** ([`ConsensusSafety`]);
//! - **k-set agreement** safety, the generalization mentioned alongside
//!   the consensus corollaries ([`KSetAgreementSafety`]);
//! - **linearizability** w.r.t. a sequential specification
//!   ([`Linearizability`], [`SeqSpec`]);
//! - **opacity** of transactional memory ([`Opacity`],
//!   [`FinalStateOpacity`]), with both the exhaustive witness search the
//!   definition prescribes and a polynomial certifier for unique-write
//!   workloads ([`certify_unique_writes`]);
//! - **strict serializability** ([`StrictSerializability`]);
//! - the §5.3 counterexample property **S** ([`PropertyS`]): opacity plus
//!   the equal-timestamp forced-abort rule.

#![warn(missing_docs)]

mod consensus_safety;
mod kset;
mod linearizability;
mod opacity;
mod property;
mod property_s;
mod serializability;
mod spec;

pub use consensus_safety::ConsensusSafety;
pub use kset::KSetAgreementSafety;
pub use linearizability::Linearizability;
pub use opacity::{certify_unique_writes, FinalStateOpacity, Opacity};
pub use property::{SafetyProperty, Violation};
pub use property_s::PropertyS;
pub use serializability::StrictSerializability;
pub use spec::{CasSpec, ConsensusSpec, CounterSpec, RegisterSpec, SeqSpec, TasSpec};
