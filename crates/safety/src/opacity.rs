//! Opacity of transactional memory (Guerraoui & Kapalka), as defined in
//! Section 4.1 of the paper.

use std::collections::{BTreeMap, HashSet}; // det-lint: allow (membership-only memo; iteration order never observed)

use slx_history::{
    History, Response, Transaction, TransactionStatus, TxnEvent, TxnView, Value, VarId,
};

use crate::property::SafetyProperty;

/// Final-state opacity: there exist a completion `comp(h)` and a sequential
/// history `s` equivalent to it, preserving real-time order and respecting
/// the TM sequential specification (committed transactions apply their
/// writes; every transaction — even aborted — reads a consistent state).
///
/// [`Opacity`] additionally quantifies over every finite prefix, which is
/// the paper's exact definition; final-state opacity is exposed separately
/// because it is the per-prefix building block and is cheaper when the
/// caller already iterates prefixes (as the explorer does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinalStateOpacity {
    init: Value,
}

impl FinalStateOpacity {
    /// Checker with all transactional variables initially `init`.
    pub fn new(init: Value) -> Self {
        FinalStateOpacity { init }
    }

    /// Whether `h` is final-state opaque.
    pub fn is_opaque(&self, h: &History) -> bool {
        let view = TxnView::parse(h);
        let txns = view.transactions();
        if txns.len() > 63 {
            panic!("opacity checker supports at most 63 transactions");
        }
        // Completion choices: a transaction whose tryC() is pending may
        // complete with C or A; every other live transaction aborts.
        let commit_pending: Vec<usize> = txns
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                t.status() == TransactionStatus::Live
                    && matches!(t.events.last(), Some(TxnEvent::TryCommit { resp: None }))
            })
            .map(|(i, _)| i)
            .collect();
        for choice in 0u64..(1 << commit_pending.len()) {
            let committed: Vec<bool> = txns
                .iter()
                .enumerate()
                .map(|(i, t)| match t.status() {
                    TransactionStatus::Committed => true,
                    TransactionStatus::Aborted => false,
                    TransactionStatus::Live => commit_pending
                        .iter()
                        .position(|&ci| ci == i)
                        .is_some_and(|bit| choice & (1 << bit) != 0),
                })
                .collect();
            if self.serializable(&view, &committed) {
                return true;
            }
        }
        false
    }

    /// Searches for a legal serialization of all transactions respecting
    /// real-time precedence, given the chosen completion.
    fn serializable(&self, view: &TxnView, committed: &[bool]) -> bool {
        let txns = view.transactions();
        let mut memo: HashSet<(u64, BTreeMap<VarId, Value>)> = HashSet::new(); // det-lint: allow (membership-only memo; iteration order never observed)
        self.dfs(view, txns, committed, 0, &BTreeMap::new(), &mut memo)
    }

    fn dfs(
        &self,
        view: &TxnView,
        txns: &[Transaction],
        committed: &[bool],
        placed: u64,
        state: &BTreeMap<VarId, Value>,
        memo: &mut HashSet<(u64, BTreeMap<VarId, Value>)>, // det-lint: allow (membership-only memo; iteration order never observed)
    ) -> bool {
        if placed == (1u64 << txns.len()) - 1 {
            return true;
        }
        if !memo.insert((placed, state.clone())) {
            return false;
        }
        for (i, t) in txns.iter().enumerate() {
            if placed & (1 << i) != 0 {
                continue;
            }
            // Real-time: every unplaced predecessor blocks `t`.
            let blocked = txns
                .iter()
                .enumerate()
                .any(|(j, u)| j != i && placed & (1 << j) == 0 && view.precedes(u, t));
            if blocked {
                continue;
            }
            if let Some(writes) = self.replay(t, committed[i], state) {
                let mut next = state.clone();
                next.extend(writes);
                if self.dfs(view, txns, committed, placed | (1 << i), &next, memo) {
                    return true;
                }
            }
        }
        false
    }

    /// Replays one transaction against the committed state at its
    /// serialization point. Returns the write set to apply (empty unless
    /// committed), or `None` if some read is inconsistent.
    fn replay(
        &self,
        t: &Transaction,
        committed: bool,
        state: &BTreeMap<VarId, Value>,
    ) -> Option<BTreeMap<VarId, Value>> {
        let mut local: BTreeMap<VarId, Value> = BTreeMap::new();
        for e in &t.events {
            match e {
                TxnEvent::Read { var, resp } => {
                    if let Some(Response::ValueReturned(v)) = resp {
                        let visible = local
                            .get(var)
                            .or_else(|| state.get(var))
                            .copied()
                            .unwrap_or(self.init);
                        if visible != *v {
                            return None;
                        }
                    }
                }
                TxnEvent::Write { var, val, resp } => {
                    if matches!(resp, Some(Response::Ok)) {
                        local.insert(*var, *val);
                    }
                }
                TxnEvent::Start { .. } | TxnEvent::TryCommit { .. } => {}
            }
        }
        Some(if committed { local } else { BTreeMap::new() })
    }
}

impl SafetyProperty for FinalStateOpacity {
    fn name(&self) -> &str {
        "final-state opacity"
    }

    fn allows(&self, h: &History) -> bool {
        self.is_opaque(h)
    }
}

/// Opacity exactly as the paper defines it: **every finite prefix** of the
/// history is final-state opaque.
///
/// Prefix quantification matters: final-state opacity alone is not
/// prefix-closed (a later commit can retroactively justify an earlier
/// read), while [`Opacity`] is prefix-closed by construction and therefore
/// a genuine safety property under Definition 3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Opacity {
    final_state: FinalStateOpacity,
}

impl Opacity {
    /// Checker with all transactional variables initially `init`.
    pub fn new(init: Value) -> Self {
        Opacity {
            final_state: FinalStateOpacity::new(init),
        }
    }

    /// The per-prefix building block.
    pub fn final_state(&self) -> &FinalStateOpacity {
        &self.final_state
    }
}

impl SafetyProperty for Opacity {
    fn name(&self) -> &str {
        "opacity"
    }

    fn allows(&self, h: &History) -> bool {
        // Only prefixes ending in a response can newly fail final-state
        // opacity (invocations and crashes add no constraints), so checking
        // those plus the full history is equivalent and ~2x cheaper.
        for k in 1..=h.len() {
            let last_is_response =
                matches!(h.actions()[k - 1], slx_history::Action::Respond { .. });
            if (last_is_response || k == h.len()) && !self.final_state.is_opaque(&h.prefix(k)) {
                return false;
            }
        }
        true
    }
}

/// Polynomial opacity certifier for *unique-write* histories whose commit
/// order equals commit-response order.
///
/// Assumptions (all guaranteed by the TMs and workloads in this workspace):
/// every value written anywhere in the history is distinct from the initial
/// value and from every other written value, and committed transactions
/// take effect in the order of their commit responses (true for the
/// single-CAS TMs, where the winning CAS and the `C` response are the same
/// atomic step).
///
/// Returns `true` only if the history is final-state opaque for every
/// prefix (the certifier validates each transaction at an explicit
/// serialization point, which yields a witness for every prefix as well).
/// A `false` result is *inconclusive* — fall back to [`Opacity`]. Tests
/// cross-validate the two on explorer-generated histories.
pub fn certify_unique_writes(h: &History, init: Value) -> bool {
    let view = TxnView::parse(h);
    let txns = view.transactions();
    // Committed transactions in commit-response order.
    let mut committed: Vec<&Transaction> = txns
        .iter()
        .filter(|t| t.status() == TransactionStatus::Committed)
        .collect();
    committed.sort_by_key(|t| t.end_index.unwrap_or(usize::MAX));

    // states[k] = variable state after the first k committed transactions.
    let mut states: Vec<BTreeMap<VarId, Value>> = Vec::with_capacity(committed.len() + 1);
    states.push(BTreeMap::new());
    for t in &committed {
        let mut next = states.last().expect("non-empty").clone();
        next.extend(t.write_set());
        states.push(next);
    }

    // Each transaction must be consistent at some position k that respects
    // real time against the committed order.
    for t in txns {
        let is_committed = t.status() == TransactionStatus::Committed;
        // Position bounds from real-time precedence against committed txns.
        let mut lo = 0usize;
        let mut hi = committed.len();
        for (k, c) in committed.iter().enumerate() {
            if c.id == t.id {
                // A committed transaction sits exactly at its own slot.
                lo = lo.max(k);
                hi = hi.min(k);
                continue;
            }
            if view.precedes(c, t) {
                lo = lo.max(k + 1);
            }
            if view.precedes(t, c) {
                hi = hi.min(k);
            }
        }
        if lo > hi {
            return false;
        }
        let fits = (lo..=hi).any(|k| reads_consistent(t, &states[k], init));
        if !fits {
            return false;
        }
        // Committed transactions must additionally be consistent exactly at
        // their slot (checked above because lo == hi == slot).
        let _ = is_committed;
    }
    true
}

fn reads_consistent(t: &Transaction, state: &BTreeMap<VarId, Value>, init: Value) -> bool {
    let mut local: BTreeMap<VarId, Value> = BTreeMap::new();
    for e in &t.events {
        match e {
            TxnEvent::Read {
                var,
                resp: Some(Response::ValueReturned(v)),
            } => {
                let visible = local
                    .get(var)
                    .or_else(|| state.get(var))
                    .copied()
                    .unwrap_or(init);
                if visible != *v {
                    return false;
                }
            }
            TxnEvent::Write { var, val, resp } => {
                if matches!(resp, Some(Response::Ok)) {
                    local.insert(*var, *val);
                }
            }
            _ => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::{Action, Operation, ProcessId};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }
    fn x(i: usize) -> VarId {
        VarId::new(i)
    }

    fn seq_commit(proc: usize, var: usize, write: i64, read_expect: i64) -> Vec<Action> {
        vec![
            Action::invoke(p(proc), Operation::TxStart),
            Action::respond(p(proc), Response::Ok),
            Action::invoke(p(proc), Operation::TxRead(x(var))),
            Action::respond(p(proc), Response::ValueReturned(v(read_expect))),
            Action::invoke(p(proc), Operation::TxWrite(x(var), v(write))),
            Action::respond(p(proc), Response::Ok),
            Action::invoke(p(proc), Operation::TxCommit),
            Action::respond(p(proc), Response::Committed),
        ]
    }

    #[test]
    fn sequential_committed_chain_is_opaque() {
        let mut acts = seq_commit(0, 0, 10, 0);
        acts.extend(seq_commit(1, 0, 20, 10));
        let h = History::from_actions(acts);
        assert!(FinalStateOpacity::new(v(0)).is_opaque(&h));
        assert!(Opacity::new(v(0)).allows(&h));
        assert!(certify_unique_writes(&h, v(0)));
    }

    #[test]
    fn stale_read_breaks_opacity() {
        // Second transaction reads 0 even though the first committed 10.
        let mut acts = seq_commit(0, 0, 10, 0);
        acts.extend(seq_commit(1, 0, 20, 0));
        let h = History::from_actions(acts);
        assert!(!FinalStateOpacity::new(v(0)).is_opaque(&h));
        assert!(!Opacity::new(v(0)).allows(&h));
        assert!(!certify_unique_writes(&h, v(0)));
    }

    #[test]
    fn aborted_transaction_must_also_read_consistently() {
        // T1 commits x1=10. A later aborted transaction reads x1=99:
        // inconsistent with every serialization point.
        let mut acts = seq_commit(0, 0, 10, 0);
        acts.extend([
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(1), Operation::TxRead(x(0))),
            Action::respond(p(1), Response::ValueReturned(v(99))),
            Action::invoke(p(1), Operation::TxCommit),
            Action::respond(p(1), Response::Aborted),
        ]);
        let h = History::from_actions(acts);
        assert!(!FinalStateOpacity::new(v(0)).is_opaque(&h));
    }

    #[test]
    fn aborted_writes_are_invisible() {
        // T1 writes 50 and aborts; T2 must read 0, not 50.
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxWrite(x(0), v(50))),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
            Action::respond(p(0), Response::Aborted),
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(1), Operation::TxRead(x(0))),
            Action::respond(p(1), Response::ValueReturned(v(0))),
        ]);
        assert!(FinalStateOpacity::new(v(0)).is_opaque(&h));
        // Seeing the aborted write would not be opaque.
        let h_bad = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxWrite(x(0), v(50))),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
            Action::respond(p(0), Response::Aborted),
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(1), Operation::TxRead(x(0))),
            Action::respond(p(1), Response::ValueReturned(v(50))),
        ]);
        assert!(!FinalStateOpacity::new(v(0)).is_opaque(&h_bad));
    }

    #[test]
    fn concurrent_transactions_serialize_either_way() {
        // Two overlapping transactions on different variables both commit.
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(0), Operation::TxWrite(x(0), v(1))),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(1), Operation::TxWrite(x(1), v(2))),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
            Action::respond(p(0), Response::Committed),
            Action::invoke(p(1), Operation::TxCommit),
            Action::respond(p(1), Response::Committed),
        ]);
        assert!(Opacity::new(v(0)).allows(&h));
        assert!(certify_unique_writes(&h, v(0)));
    }

    #[test]
    fn write_skew_style_cycle_rejected() {
        // T1 reads x2=0 writes x1=1; T2 reads x1=0 writes x2=2; both commit
        // while fully overlapping: no serialization order satisfies both
        // reads followed by the other's write... actually each can be
        // serialized before the other's write lands on a different var —
        // this *is* serializable (classic write skew). Use same variable
        // for a genuine cycle: T1 reads x1=0 writes x1=1 committed; T2
        // reads x1=0 writes x1=2 committed; overlapping. One of them must
        // see the other's write: not opaque.
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(0), Operation::TxRead(x(0))),
            Action::respond(p(0), Response::ValueReturned(v(0))),
            Action::invoke(p(1), Operation::TxRead(x(0))),
            Action::respond(p(1), Response::ValueReturned(v(0))),
            Action::invoke(p(0), Operation::TxWrite(x(0), v(1))),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(1), Operation::TxWrite(x(0), v(2))),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
            Action::respond(p(0), Response::Committed),
            Action::invoke(p(1), Operation::TxCommit),
            Action::respond(p(1), Response::Committed),
        ]);
        assert!(!FinalStateOpacity::new(v(0)).is_opaque(&h));
        assert!(!certify_unique_writes(&h, v(0)));
    }

    #[test]
    fn pending_commit_may_complete_either_way() {
        // T1's tryC is pending; T2 reads T1's write. Opaque iff T1 is
        // completed as committed — the checker must find that completion.
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxWrite(x(0), v(7))),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(1), Operation::TxRead(x(0))),
            Action::respond(p(1), Response::ValueReturned(v(7))),
        ]);
        assert!(FinalStateOpacity::new(v(0)).is_opaque(&h));
    }

    #[test]
    fn live_transaction_without_tryc_must_abort_in_completion() {
        // T1 wrote 7 but never invoked tryC; T2 reading 7 is NOT opaque
        // because the completion must abort T1.
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxWrite(x(0), v(7))),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(1), Operation::TxRead(x(0))),
            Action::respond(p(1), Response::ValueReturned(v(7))),
        ]);
        assert!(!FinalStateOpacity::new(v(0)).is_opaque(&h));
    }

    #[test]
    fn real_time_order_respected() {
        // T1 commits x1=10 strictly before T2 starts, yet T2 reads 0:
        // T2 cannot serialize before T1.
        let mut acts = seq_commit(0, 0, 10, 0);
        acts.extend([
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(1), Operation::TxRead(x(0))),
            Action::respond(p(1), Response::ValueReturned(v(0))),
        ]);
        let h = History::from_actions(acts);
        assert!(!FinalStateOpacity::new(v(0)).is_opaque(&h));
    }

    #[test]
    fn empty_and_invocation_only_histories_are_opaque() {
        assert!(Opacity::new(v(0)).allows(&History::new()));
        let h = History::from_actions([Action::invoke(p(0), Operation::TxStart)]);
        assert!(Opacity::new(v(0)).allows(&h));
    }

    #[test]
    fn opacity_prefix_monotone_on_samples() {
        let mut acts = seq_commit(0, 0, 10, 0);
        acts.extend(seq_commit(1, 1, 20, 0));
        let h = History::from_actions(acts);
        assert!(Opacity::new(v(0)).prefix_monotone_on(&h));
    }

    #[test]
    fn certifier_agrees_with_exhaustive_on_samples() {
        let samples: Vec<History> = vec![History::from_actions(seq_commit(0, 0, 10, 0)), {
            let mut a = seq_commit(0, 0, 10, 0);
            a.extend(seq_commit(1, 0, 20, 10));
            History::from_actions(a)
        }];
        for h in &samples {
            if certify_unique_writes(h, v(0)) {
                assert!(Opacity::new(v(0)).allows(h), "certifier unsound on {h}");
            }
        }
    }
}
