//! The safety-property trait.

use std::fmt;

use slx_history::History;

/// A reported safety violation: the shortest violating prefix and a
/// human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Length of the shortest violating prefix of the submitted history.
    pub prefix_len: usize,
    /// Explanation of what went wrong.
    pub reason: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "violation at prefix {}: {}",
            self.prefix_len, self.reason
        )
    }
}

/// A safety property `S` (Definition 3.1): a prefix-closed, limit-closed set
/// of well-formed histories, represented by its finite-membership predicate.
///
/// Implementors must make [`SafetyProperty::allows`] *prefix-monotone*: if a
/// prefix of `h` is disallowed then `h` is disallowed. The framework's
/// property tests check this on generated histories. Limit closure then
/// holds automatically for the induced set (an infinite history is in `S`
/// iff all its finite prefixes are), so any implementor denotes a genuine
/// safety property.
pub trait SafetyProperty {
    /// A short name for diagnostics (e.g. `"opacity"`).
    fn name(&self) -> &str;

    /// Whether the finite history `h` is a member of the property.
    fn allows(&self, h: &History) -> bool;

    /// Like [`SafetyProperty::allows`], with an explanation on failure.
    /// The default locates the shortest violating prefix by bisection-free
    /// linear scan, so the reported `prefix_len` is the exact point at
    /// which the "bad thing" happened.
    fn check(&self, h: &History) -> Result<(), Violation> {
        if self.allows(h) {
            return Ok(());
        }
        for k in 0..=h.len() {
            if !self.allows(&h.prefix(k)) {
                return Err(Violation {
                    prefix_len: k,
                    reason: format!("history rejected by {}", self.name()),
                });
            }
        }
        // `allows` was false for the full history but true for all prefixes
        // including the full history itself — impossible unless the
        // implementor is non-deterministic.
        Err(Violation {
            prefix_len: h.len(),
            reason: format!(
                "history rejected by {} (non-monotone checker?)",
                self.name()
            ),
        })
    }

    /// Validates prefix-monotonicity of this checker on a specific history:
    /// if `h` is allowed, every prefix must be allowed too. Test helper.
    fn prefix_monotone_on(&self, h: &History) -> bool {
        if !self.allows(h) {
            return true;
        }
        h.prefixes().all(|p| self.allows(&p))
    }
}

impl<T: SafetyProperty + ?Sized> SafetyProperty for &T {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn allows(&self, h: &History) -> bool {
        (**self).allows(h)
    }
}

impl<T: SafetyProperty + ?Sized> SafetyProperty for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn allows(&self, h: &History) -> bool {
        (**self).allows(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::{Action, Operation, ProcessId};

    /// Toy property: histories with at most `max` actions.
    struct AtMost {
        max: usize,
    }

    impl SafetyProperty for AtMost {
        fn name(&self) -> &str {
            "at-most"
        }
        fn allows(&self, h: &History) -> bool {
            h.len() <= self.max
        }
    }

    fn hist(n: usize) -> History {
        History::from_actions((0..n).map(|i| Action::crash(ProcessId::new(i))))
    }

    #[test]
    fn check_locates_shortest_violating_prefix() {
        let s = AtMost { max: 2 };
        assert!(s.check(&hist(2)).is_ok());
        let v = s.check(&hist(5)).unwrap_err();
        assert_eq!(v.prefix_len, 3);
        assert!(v.to_string().contains("prefix 3"));
    }

    #[test]
    fn prefix_monotone_helper() {
        let s = AtMost { max: 2 };
        assert!(s.prefix_monotone_on(&hist(2)));
        assert!(s.prefix_monotone_on(&hist(9)));
    }

    #[test]
    fn blanket_impls() {
        let s = AtMost { max: 1 };
        let r: &dyn SafetyProperty = &s;
        assert_eq!(r.name(), "at-most");
        assert!(r.allows(&hist(1)));
        let b: Box<dyn SafetyProperty> = Box::new(AtMost { max: 0 });
        assert!(!b.allows(&hist(1)));
        let _ = Operation::TxStart; // keep import used
    }
}
