//! k-set agreement safety.

use slx_history::{Action, History, Operation, Response, Value};

use crate::property::SafetyProperty;

/// Safety of **k-set agreement** (Borowsky & Gafni; cited by the paper as a
/// further context for its impossibilities): validity as in consensus, and
/// *k-agreement* — at most `k` distinct values are decided. `k = 1` is
/// exactly [`crate::ConsensusSafety`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KSetAgreementSafety {
    k: usize,
}

impl KSetAgreementSafety {
    /// Creates the checker for a given `k ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (no value could ever be decided, so the property
    /// would not allow any response and violate the paper's standing
    /// assumption on safety properties).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k-set agreement requires k >= 1");
        KSetAgreementSafety { k }
    }

    /// The agreement bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl SafetyProperty for KSetAgreementSafety {
    fn name(&self) -> &str {
        "k-set agreement safety"
    }

    fn allows(&self, h: &History) -> bool {
        let mut proposed: Vec<Value> = Vec::new();
        let mut decided: Vec<Value> = Vec::new();
        for a in h.iter() {
            match a {
                Action::Invoke { op, .. } => match op {
                    Operation::Propose(v) => proposed.push(*v),
                    _ => return false,
                },
                Action::Respond { resp, .. } => match resp {
                    Response::Decided(v) => {
                        if !proposed.contains(v) {
                            return false;
                        }
                        if !decided.contains(v) {
                            decided.push(*v);
                            if decided.len() > self.k {
                                return false;
                            }
                        }
                    }
                    _ => return false,
                },
                Action::Crash { .. } => {}
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConsensusSafety;
    use slx_history::ProcessId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn propose(i: usize, val: i64) -> Action {
        Action::invoke(p(i), Operation::Propose(Value::new(val)))
    }
    fn decide(i: usize, val: i64) -> Action {
        Action::respond(p(i), Response::Decided(Value::new(val)))
    }

    fn two_values() -> History {
        History::from_actions([
            propose(0, 1),
            propose(1, 2),
            propose(2, 3),
            decide(0, 1),
            decide(1, 2),
            decide(2, 2),
        ])
    }

    #[test]
    fn two_set_allows_two_values() {
        assert!(KSetAgreementSafety::new(2).allows(&two_values()));
    }

    #[test]
    fn one_set_rejects_two_values() {
        assert!(!KSetAgreementSafety::new(1).allows(&two_values()));
    }

    #[test]
    fn one_set_matches_consensus_safety() {
        let histories = [
            two_values(),
            History::from_actions([propose(0, 1), decide(0, 1)]),
            History::from_actions([propose(0, 1), decide(0, 2)]),
            History::new(),
        ];
        for h in &histories {
            assert_eq!(
                KSetAgreementSafety::new(1).allows(h),
                ConsensusSafety::new().allows(h),
                "disagreement on {h}"
            );
        }
    }

    #[test]
    fn validity_still_required() {
        let h = History::from_actions([propose(0, 1), decide(0, 7)]);
        assert!(!KSetAgreementSafety::new(3).allows(&h));
    }

    #[test]
    fn repeat_of_same_value_not_counted_twice() {
        let h = History::from_actions([propose(0, 1), propose(1, 1), decide(0, 1), decide(1, 1)]);
        assert!(KSetAgreementSafety::new(1).allows(&h));
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let _ = KSetAgreementSafety::new(0);
    }
}
