//! Strict serializability of transactional memory.

use std::collections::{BTreeMap, HashSet}; // det-lint: allow (membership-only memo; iteration order never observed)

use slx_history::{
    History, Response, Transaction, TransactionStatus, TxnEvent, TxnView, Value, VarId,
};

use crate::property::SafetyProperty;

/// Strict serializability (Papadimitriou): there is a real-time-preserving
/// serialization of the **committed** transactions that is legal for the
/// sequential TM specification. Unlike opacity, aborted and live
/// transactions are unconstrained — they may have observed inconsistent
/// states.
///
/// The paper cites strict serializability alongside opacity in Theorem
/// 5.3's source (\[4\]): the TM liveness impossibilities hold against either.
/// Having both lets the test suite confirm the strictness ordering
/// `opacity ⊆ strict serializability` on generated histories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrictSerializability {
    init: Value,
}

impl StrictSerializability {
    /// Checker with all transactional variables initially `init`.
    pub fn new(init: Value) -> Self {
        StrictSerializability { init }
    }

    fn serializable(&self, h: &History) -> bool {
        let view = TxnView::parse(h);
        // Consider committed transactions plus commit-pending ones that may
        // be completed as committed (a pending tryC may have taken effect).
        let committed: Vec<&Transaction> = view
            .transactions()
            .iter()
            .filter(|t| t.status() == TransactionStatus::Committed)
            .collect();
        let pending_commit: Vec<&Transaction> = view
            .transactions()
            .iter()
            .filter(|t| {
                t.status() == TransactionStatus::Live
                    && matches!(t.events.last(), Some(TxnEvent::TryCommit { resp: None }))
            })
            .collect();
        if committed.len() + pending_commit.len() > 63 {
            panic!("serializability checker supports at most 63 transactions");
        }
        for choice in 0u64..(1 << pending_commit.len()) {
            let mut chosen: Vec<&Transaction> = committed.clone();
            for (bit, t) in pending_commit.iter().enumerate() {
                if choice & (1 << bit) != 0 {
                    chosen.push(t);
                }
            }
            let mut memo = HashSet::new(); // det-lint: allow (membership-only memo; iteration order never observed)
            if self.dfs(&view, &chosen, 0, &BTreeMap::new(), &mut memo) {
                return true;
            }
        }
        false
    }

    fn dfs(
        &self,
        view: &TxnView,
        txns: &[&Transaction],
        placed: u64,
        state: &BTreeMap<VarId, Value>,
        memo: &mut HashSet<(u64, BTreeMap<VarId, Value>)>, // det-lint: allow (membership-only memo; iteration order never observed)
    ) -> bool {
        if placed == (1u64 << txns.len()) - 1 {
            return true;
        }
        if !memo.insert((placed, state.clone())) {
            return false;
        }
        for (i, t) in txns.iter().enumerate() {
            if placed & (1 << i) != 0 {
                continue;
            }
            let blocked = txns
                .iter()
                .enumerate()
                .any(|(j, u)| j != i && placed & (1 << j) == 0 && view.precedes(u, t));
            if blocked {
                continue;
            }
            if let Some(writes) = self.replay(t, state) {
                let mut next = state.clone();
                next.extend(writes);
                if self.dfs(view, txns, placed | (1 << i), &next, memo) {
                    return true;
                }
            }
        }
        false
    }

    fn replay(
        &self,
        t: &Transaction,
        state: &BTreeMap<VarId, Value>,
    ) -> Option<BTreeMap<VarId, Value>> {
        let mut local: BTreeMap<VarId, Value> = BTreeMap::new();
        for e in &t.events {
            match e {
                TxnEvent::Read {
                    var,
                    resp: Some(Response::ValueReturned(v)),
                } => {
                    let visible = local
                        .get(var)
                        .or_else(|| state.get(var))
                        .copied()
                        .unwrap_or(self.init);
                    if visible != *v {
                        return None;
                    }
                }
                TxnEvent::Write { var, val, resp } => {
                    if matches!(resp, Some(Response::Ok)) {
                        local.insert(*var, *val);
                    }
                }
                _ => {}
            }
        }
        Some(local)
    }
}

impl SafetyProperty for StrictSerializability {
    fn name(&self) -> &str {
        "strict serializability"
    }

    fn allows(&self, h: &History) -> bool {
        // Quantify over prefixes so the induced set is prefix-closed.
        for k in 1..=h.len() {
            let last_is_response =
                matches!(h.actions()[k - 1], slx_history::Action::Respond { .. });
            if (last_is_response || k == h.len()) && !self.serializable(&h.prefix(k)) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opacity::Opacity;
    use slx_history::{Action, Operation, ProcessId};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }
    fn x(i: usize) -> VarId {
        VarId::new(i)
    }

    /// An aborted transaction sees an inconsistent state (reads 99 which
    /// nobody wrote): allowed by strict serializability, rejected by
    /// opacity.
    fn inconsistent_abort() -> History {
        History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxRead(x(0))),
            Action::respond(p(0), Response::ValueReturned(v(99))),
            Action::invoke(p(0), Operation::TxCommit),
            Action::respond(p(0), Response::Aborted),
        ])
    }

    #[test]
    fn aborted_inconsistency_tolerated() {
        assert!(StrictSerializability::new(v(0)).allows(&inconsistent_abort()));
        assert!(!Opacity::new(v(0)).allows(&inconsistent_abort()));
    }

    #[test]
    fn committed_inconsistency_rejected() {
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxRead(x(0))),
            Action::respond(p(0), Response::ValueReturned(v(99))),
            Action::invoke(p(0), Operation::TxCommit),
            Action::respond(p(0), Response::Committed),
        ]);
        assert!(!StrictSerializability::new(v(0)).allows(&h));
    }

    #[test]
    fn opacity_implies_strict_serializability_on_samples() {
        let opaque_history = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxWrite(x(0), v(1))),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
            Action::respond(p(0), Response::Committed),
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(1), Operation::TxRead(x(0))),
            Action::respond(p(1), Response::ValueReturned(v(1))),
        ]);
        assert!(Opacity::new(v(0)).allows(&opaque_history));
        assert!(StrictSerializability::new(v(0)).allows(&opaque_history));
    }

    #[test]
    fn real_time_still_enforced_between_committed() {
        // T1 commits x1=1 before T2 starts; T2 reads 0 and commits.
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxWrite(x(0), v(1))),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
            Action::respond(p(0), Response::Committed),
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(1), Operation::TxRead(x(0))),
            Action::respond(p(1), Response::ValueReturned(v(0))),
            Action::invoke(p(1), Operation::TxCommit),
            Action::respond(p(1), Response::Committed),
        ]);
        assert!(!StrictSerializability::new(v(0)).allows(&h));
    }

    #[test]
    fn pending_commit_counted_when_observed() {
        // T1's tryC pending, T2 reads its write and commits: serializable
        // by completing T1 as committed.
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxWrite(x(0), v(7))),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(1), Operation::TxRead(x(0))),
            Action::respond(p(1), Response::ValueReturned(v(7))),
            Action::invoke(p(1), Operation::TxCommit),
            Action::respond(p(1), Response::Committed),
        ]);
        assert!(StrictSerializability::new(v(0)).allows(&h));
    }

    #[test]
    fn empty_history_serializable() {
        assert!(StrictSerializability::new(v(0)).allows(&History::new()));
    }
}
