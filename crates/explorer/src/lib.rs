//! Small-scope exhaustive exploration of simulated systems.
//!
//! Liveness and safety claims in the paper are universally quantified over
//! schedules. At small scope this crate discharges them mechanically:
//!
//! - [`explore_safety`] enumerates *every* schedule of a set of processes
//!   up to a depth bound and checks a safety property on every produced
//!   history (configurations are memoized together with a caller-supplied
//!   history digest, so the enumeration is exact for properties that
//!   depend on history only through the digest);
//! - [`decidable_values`] computes which consensus values are reachable
//!   decisions from a configuration — the valence analysis that powers the
//!   bivalence adversary (Corollary 4.5 / Figure 1a's black points);
//! - [`run_until_cycle_keyed`] runs a *deterministic* scheduler and
//!   detects a repeated (system, scheduler) key — retaining only 128-bit
//!   fingerprints of the keys, like the kernel's visited set: a genuine
//!   lasso, i.e. a witness of an infinite execution (used to prove
//!   liveness violations: if no good response occurs on the cycle, the
//!   infinite execution starves everyone on it). [`run_until_cycle`] and
//!   [`run_until_cycle_keyed_retained`] are the retained-map baselines
//!   the differential tests pin it against;
//! - [`verify_solo_progress`] checks obstruction-freedom exhaustively: from
//!   every reachable configuration, every pending process running alone
//!   responds within a step budget.

//!
//! Since the `slx-engine` refactor, the enumerating checkers
//! ([`explore_safety`], [`decidable_values`], [`verify_solo_progress`])
//! all run on the shared exploration kernel: a fingerprint-only visited
//! set (no retained configuration clones), a parallel frontier-BFS backend
//! with deterministic merging, and a sequential DFS fallback. The seed's
//! retained-clone loops survive in [`baseline`] for benchmarking and
//! differential testing.

#![warn(missing_docs)]

pub mod baseline;
mod explore;
mod lasso;
mod valence;

pub use explore::{
    explore_safety, explore_safety_observed, explore_safety_with, history_digest,
    verify_solo_progress, verify_solo_progress_with, ExploreOutcome, SoloCounterexample,
};
pub use lasso::{
    run_until_cycle, run_until_cycle_keyed, run_until_cycle_keyed_retained, CycleWitness,
};
pub use valence::{decidable_values, decidable_values_with, DecidableSet};
