//! Exhaustive schedule enumeration with safety checking.
//!
//! Since the `slx-engine` refactor these searches run on the shared
//! exploration kernel: configurations are deduplicated by 128-bit
//! fingerprint (no retained clones), levels are expanded by the parallel
//! BFS backend when the machine has cores to spare, and every outcome
//! carries the kernel's [`ExploreStats`].

use std::hash::Hash;

use slx_engine::{
    Checker, DeltaCodec, Digest, Expansion, ExploreStats, Fingerprinter, StateCodec, StateSpace,
};
use slx_history::{History, ProcessId};
use slx_memory::{Process, StepEffect, System, Word};
use slx_safety::SafetyProperty;

/// Fast digest of a full external history, order-sensitive.
///
/// This is the workspace-wide history digest (re-exported by
/// `slx_core::explorer`); it is sound for *any* safety property because it
/// captures the entire history. Callers with cheaper faithful digests
/// (e.g. just the decided values for consensus agreement) can still pass
/// their own.
#[must_use]
pub fn history_digest(h: &History) -> u64 {
    slx_engine::digest64_of_iter(h.iter())
}

/// Result of an [`explore_safety`] run.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Distinct (configuration, digest) pairs visited.
    pub configs: usize,
    /// Violating histories found (search prunes below each violation).
    pub violations: Vec<History>,
    /// Whether the depth bound cut any branch (if `false`, the search was
    /// exhaustive: every schedule of the active processes, to quiescence).
    pub truncated: bool,
    /// Kernel statistics for this run (states/sec, dedup hit rate, peak
    /// frontier, threads).
    pub stats: ExploreStats,
}

impl ExploreOutcome {
    /// Whether the property held everywhere explored.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The safety-exploration state space: all schedules of the active
/// processes to a depth bound, pruning below violations.
struct SafetySpace<'a, W, P, S, D> {
    active: &'a [ProcessId],
    depth: usize,
    safety: &'a S,
    digest: D,
    /// Whether `active` covers every process of the explored systems —
    /// required for the symmetry reduction: a process permutation is only
    /// schedule-preserving when the active set is permutation-closed.
    all_active: bool,
    _marker: std::marker::PhantomData<(W, P)>,
}

/// Whether `active` is exactly `{0, .., n-1}` — the full, permutation-
/// closed active set symmetry reduction requires.
pub(crate) fn covers_all_processes(active: &[ProcessId], n: usize) -> bool {
    active.len() == n && {
        let mut seen = vec![false; n];
        active.iter().all(|p| {
            let i = p.index();
            i < n && !std::mem::replace(&mut seen[i], true)
        })
    }
}

impl<W, P, S, D> StateSpace for SafetySpace<'_, W, P, S, D>
where
    W: Word + DeltaCodec + Send + Sync,
    P: Process<W> + DeltaCodec + Clone + Eq + Hash + Send + Sync,
    S: SafetyProperty + Sync,
    D: Fn(&History) -> u64 + Sync,
{
    type State = System<W, P>;
    type Finding = History;

    fn digest(&self, sys: &Self::State) -> Digest {
        // Configuration fingerprint mixed with the caller's history
        // digest: exactly the `(configuration, digest(history))` key the
        // retained-set implementation deduplicated on.
        let mut fp = Fingerprinter::new();
        sys.hash(&mut fp);
        std::hash::Hasher::write_u64(&mut fp, (self.digest)(sys.history()));
        fp.digest()
    }

    fn has_symmetry_reduction(&self) -> bool {
        self.all_active && P::has_symmetry_reduction()
    }

    fn canonical_digest(&self, sys: &Self::State) -> Digest {
        // The algorithm's orbit-canonical configuration digest mixed with
        // the same history digest as the exact key: the history captures
        // everything verdict-relevant about the past, and it is constant
        // across the (undecided) bulk of each level, so orbit twins with
        // equal histories still collapse. Sound for the same reason the
        // exact key is: two states with equal canonical keys have
        // symmetry-equivalent futures and identical past verdicts.
        let mut fp = Fingerprinter::new();
        std::hash::Hasher::write_u128(&mut fp, P::canonical_system_digest(sys).0);
        std::hash::Hasher::write_u64(&mut fp, (self.digest)(sys.history()));
        fp.digest()
    }

    fn expand(&self, sys: &Self::State, depth: usize, ctx: &mut Expansion<Self>) {
        if depth >= self.depth {
            if !sys.quiescent() {
                ctx.mark_truncated();
            }
            return;
        }
        ctx.reserve(self.active.len());
        for &p in self.active {
            if !sys.can_step(p) {
                continue;
            }
            let mut next = sys.clone();
            let effect = next.step(p).expect("steppable process steps");
            if matches!(effect, StepEffect::Responded(_)) && !self.safety.allows(next.history()) {
                ctx.finding(next.history().clone());
                continue; // prune below the violation
            }
            ctx.push(next);
        }
    }

    /// The consensus/TM replay fast path: rebuilds only the `index`-th
    /// pushed successor, stepping preceding schedulable processes just
    /// far enough to classify them as push vs pruned violation — no
    /// sibling digests, no successor vector, no findings re-recorded.
    /// Must mirror `expand`'s push order exactly (the four-way replay
    /// differential pins the agreement).
    fn successor_at(&self, sys: &Self::State, depth: usize, index: usize) -> Option<Self::State> {
        if depth >= self.depth {
            return None;
        }
        let mut pushed = 0usize;
        for &p in self.active {
            if !sys.can_step(p) {
                continue;
            }
            let mut next = sys.clone();
            let effect = next.step(p).expect("steppable process steps");
            if matches!(effect, StepEffect::Responded(_)) && !self.safety.allows(next.history()) {
                continue; // expand prunes (and reports) this one
            }
            if pushed == index {
                return Some(next);
            }
            pushed += 1;
        }
        None
    }

    fn has_successor_fast_path(&self) -> bool {
        true
    }
}

/// Explores **all schedules** of the `active` processes from `initial`
/// (which should already contain its invocations), up to `depth` steps per
/// branch, checking `safety` on the history after every response.
///
/// `digest` must capture everything about the *past* history that the
/// safety property's future verdicts depend on (e.g. for consensus
/// agreement: the set of decided values). Configurations are deduplicated
/// on a fingerprint of `(configuration, digest(history))`; with a faithful
/// digest the search is exact, not heuristic.
///
/// Runs on [`Checker::auto`] (parallel BFS sized to the machine); use
/// [`explore_safety_with`] to pin a backend.
pub fn explore_safety<W, P, S>(
    initial: &System<W, P>,
    active: &[ProcessId],
    depth: usize,
    safety: &S,
    digest: impl Fn(&History) -> u64 + Copy + Send + Sync,
) -> ExploreOutcome
where
    W: Word + DeltaCodec + Send + Sync,
    P: Process<W> + DeltaCodec + Clone + Eq + Hash + Send + Sync,
    S: SafetyProperty + Sync,
{
    explore_safety_with(&Checker::auto(), initial, active, depth, safety, digest)
}

/// [`explore_safety`] on an explicit kernel backend (differential tests
/// pit the parallel BFS and sequential DFS backends against each other).
pub fn explore_safety_with<W, P, S>(
    checker: &Checker,
    initial: &System<W, P>,
    active: &[ProcessId],
    depth: usize,
    safety: &S,
    digest: impl Fn(&History) -> u64 + Copy + Send + Sync,
) -> ExploreOutcome
where
    W: Word + DeltaCodec + Send + Sync,
    P: Process<W> + DeltaCodec + Clone + Eq + Hash + Send + Sync,
    S: SafetyProperty + Sync,
{
    explore_safety_observed(checker, initial, active, depth, safety, digest, |_, _| true)
}

/// [`explore_safety_with`] with a progress observer: `progress` receives
/// the current depth and a lifetime [`ExploreStats`] snapshot at every
/// BFS level boundary (see [`Checker::run_observed`]); returning `false`
/// cancels the run, which then reports `stopped_early`. This is the
/// check service's streaming/cancellation entry point — a checkpointed
/// run cancelled here resumes from its last committed image.
pub fn explore_safety_observed<W, P, S>(
    checker: &Checker,
    initial: &System<W, P>,
    active: &[ProcessId],
    depth: usize,
    safety: &S,
    digest: impl Fn(&History) -> u64 + Copy + Send + Sync,
    progress: impl FnMut(usize, &ExploreStats) -> bool,
) -> ExploreOutcome
where
    W: Word + DeltaCodec + Send + Sync,
    P: Process<W> + DeltaCodec + Clone + Eq + Hash + Send + Sync,
    S: SafetyProperty + Sync,
{
    let space = SafetySpace {
        active,
        depth,
        safety,
        digest,
        all_active: covers_all_processes(active, initial.n()),
        _marker: std::marker::PhantomData,
    };
    let out = checker.run_observed(&space, vec![initial.clone()], |_| false, progress);
    ExploreOutcome {
        configs: out.stats.configs,
        violations: out.findings,
        truncated: out.stats.truncated,
        stats: out.stats,
    }
}

/// A counterexample to solo progress: a reachable configuration from which
/// the pending process `proc`, running alone, fails to respond within the
/// step budget.
#[derive(Debug, Clone)]
pub struct SoloCounterexample {
    /// The starved process.
    pub proc: ProcessId,
    /// The history of the configuration from which the solo run starved.
    pub reached_by: History,
}

// Findings must be persistable so checkpointed obstruction-freedom runs
// can carry accumulated counterexamples across a crash/resume.
impl StateCodec for SoloCounterexample {
    fn encode(&self, out: &mut Vec<u8>) {
        self.proc.encode(out);
        self.reached_by.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(SoloCounterexample {
            proc: ProcessId::decode(input)?,
            reached_by: History::decode(input)?,
        })
    }
}

/// State space for the obstruction-freedom check: reachable configurations
/// to a depth bound, each solo-checked as it is expanded.
struct SoloSpace<'a, W, P> {
    active: &'a [ProcessId],
    depth: usize,
    solo_budget: usize,
    /// See [`SafetySpace::all_active`]: symmetry reduction needs the
    /// active set permutation-closed.
    all_active: bool,
    _marker: std::marker::PhantomData<(W, P)>,
}

impl<W, P> StateSpace for SoloSpace<'_, W, P>
where
    W: Word + DeltaCodec + Send + Sync,
    P: Process<W> + DeltaCodec + Clone + Eq + Hash + Send + Sync,
{
    type State = System<W, P>;
    type Finding = SoloCounterexample;

    fn digest(&self, sys: &Self::State) -> Digest {
        sys.digest128()
    }

    fn has_symmetry_reduction(&self) -> bool {
        self.all_active && P::has_symmetry_reduction()
    }

    fn canonical_digest(&self, sys: &Self::State) -> Digest {
        // Starvation is symmetry-invariant: if some pending process of
        // `sys` starves running solo, its image starves in every
        // orbit-equivalent configuration, so checking one representative
        // per orbit preserves the verdict (the reported witness history
        // may differ by the symmetry, nothing else).
        P::canonical_system_digest(sys)
    }

    fn expand(&self, sys: &Self::State, depth: usize, ctx: &mut Expansion<Self>) {
        // Solo check at this configuration.
        for &p in self.active {
            if !sys.is_pending(p) || sys.is_crashed(p) {
                continue;
            }
            let mut solo = sys.clone();
            let mut responded = false;
            for _ in 0..self.solo_budget {
                if !solo.can_step(p) {
                    break;
                }
                if let StepEffect::Responded(_) = solo.step(p).expect("steppable") {
                    responded = true;
                    break;
                }
            }
            if !responded {
                ctx.finding(SoloCounterexample {
                    proc: p,
                    reached_by: sys.history().clone(),
                });
                return;
            }
        }
        if depth >= self.depth {
            return;
        }
        ctx.reserve(self.active.len());
        for &p in self.active {
            if sys.can_step(p) {
                let mut next = sys.clone();
                next.step(p).expect("steppable");
                ctx.push(next);
            }
        }
    }

    // No `successor_at` fast path: the solo-progress pre-check dominates
    // this space's expansion cost and would have to rerun on every
    // indexed rebuild, so the replay codec's one-shared-expansion
    // fallback (which runs it once per parent) is already the cheaper
    // regeneration.
}

/// Verifies obstruction-freedom ((1,1)-freedom) exhaustively at small
/// scope: from **every** configuration reachable by scheduling the
/// `active` processes for up to `depth` steps, every pending process that
/// then runs **alone** responds within `solo_budget` steps.
///
/// Returns the first counterexample found, or `None` if the check passes.
pub fn verify_solo_progress<W, P>(
    initial: &System<W, P>,
    active: &[ProcessId],
    depth: usize,
    solo_budget: usize,
) -> Option<SoloCounterexample>
where
    W: Word + DeltaCodec + Send + Sync,
    P: Process<W> + DeltaCodec + Clone + Eq + Hash + Send + Sync,
{
    verify_solo_progress_with(&Checker::auto(), initial, active, depth, solo_budget)
}

/// [`verify_solo_progress`] on an explicit kernel backend (the symmetry
/// differential suite pins backends and reduction settings against each
/// other).
pub fn verify_solo_progress_with<W, P>(
    checker: &Checker,
    initial: &System<W, P>,
    active: &[ProcessId],
    depth: usize,
    solo_budget: usize,
) -> Option<SoloCounterexample>
where
    W: Word + DeltaCodec + Send + Sync,
    P: Process<W> + DeltaCodec + Clone + Eq + Hash + Send + Sync,
{
    let space = SoloSpace {
        active,
        depth,
        solo_budget,
        all_active: covers_all_processes(active, initial.n()),
        _marker: std::marker::PhantomData,
    };
    let out = checker.run_until(&space, vec![initial.clone()], |found| !found.is_empty());
    out.findings.into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_consensus::{CasConsensus, ConsWord, ObstructionFreeConsensus};
    use slx_engine::StateCodec;
    use slx_history::{Action, Operation, Response, Value};
    use slx_memory::Memory;
    use slx_safety::ConsensusSafety;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }

    /// Digest for consensus safety: proposals seen and decisions made.
    fn consensus_digest(h: &History) -> u64 {
        slx_engine::digest64_of_iter(h.iter().map(|a| match a {
            Action::Invoke { op, .. } => (1u8, Some(*op), None, None),
            Action::Respond { resp, .. } => (2u8, None, Some(*resp), None),
            Action::Crash { proc } => (3u8, None, None, Some(*proc)),
        }))
    }

    #[test]
    fn cas_consensus_safe_under_all_schedules() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let obj = CasConsensus::alloc(&mut mem);
        let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        let active = [p(0), p(1)];
        let out = explore_safety(&sys, &active, 16, &ConsensusSafety::new(), consensus_digest);
        assert!(out.holds(), "violations: {:?}", out.violations);
        assert!(!out.truncated, "depth 16 must finish 2×2-step processes");
        assert!(out.configs > 1);
        assert_eq!(out.stats.configs, out.configs);
    }

    #[test]
    fn of_consensus_safe_under_all_schedules_small_scope() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 8);
        let procs = vec![
            ObstructionFreeConsensus::new(layout.clone(), p(0), 2),
            ObstructionFreeConsensus::new(layout, p(1), 2),
        ];
        let mut sys = System::new(mem, procs);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        let active = [p(0), p(1)];
        let out = explore_safety(&sys, &active, 26, &ConsensusSafety::new(), consensus_digest);
        assert!(out.holds(), "violations: {:?}", out.violations);
        // Depth 26 truncates (the algorithm can run long under contention);
        // what matters is that no explored schedule violates safety.
        assert!(out.configs > 100);
    }

    #[test]
    fn explore_detects_injected_violation() {
        /// A broken "consensus" that decides its own value immediately.
        #[derive(Debug, Clone, PartialEq, Eq, Hash)]
        struct Selfish {
            pending: Option<Value>,
        }
        impl slx_memory::Process<ConsWord> for Selfish {
            fn on_invoke(&mut self, op: Operation) {
                if let Operation::Propose(v) = op {
                    self.pending = Some(v);
                }
            }
            fn has_step(&self) -> bool {
                self.pending.is_some()
            }
            fn step(&mut self, _mem: &mut Memory<ConsWord>) -> StepEffect {
                let v = self.pending.take().expect("pending");
                StepEffect::Responded(Response::Decided(v))
            }
        }
        impl StateCodec for Selfish {
            fn encode(&self, out: &mut Vec<u8>) {
                self.pending.encode(out);
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                Some(Selfish {
                    pending: Option::decode(input)?,
                })
            }
        }
        impl DeltaCodec for Selfish {}
        let mem: Memory<ConsWord> = Memory::new();
        let mut sys = System::new(
            mem,
            vec![Selfish { pending: None }, Selfish { pending: None }],
        );
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        let out = explore_safety(
            &sys,
            &[p(0), p(1)],
            4,
            &ConsensusSafety::new(),
            consensus_digest,
        );
        assert!(!out.holds(), "disagreement must be found");
    }

    #[test]
    fn solo_progress_holds_for_of_consensus() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 16);
        let procs = vec![
            ObstructionFreeConsensus::new(layout.clone(), p(0), 2),
            ObstructionFreeConsensus::new(layout, p(1), 2),
        ];
        let mut sys = System::new(mem, procs);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        let cex = verify_solo_progress(&sys, &[p(0), p(1)], 14, 200);
        assert!(
            cex.is_none(),
            "starvation from {:?}",
            cex.map(|c| c.reached_by)
        );
    }

    #[test]
    fn solo_progress_detects_spinner() {
        /// Spins forever on a register, never responding.
        #[derive(Debug, Clone, PartialEq, Eq, Hash)]
        struct Spinner {
            reg: slx_memory::ObjId,
            pending: bool,
        }
        impl slx_memory::Process<ConsWord> for Spinner {
            fn on_invoke(&mut self, _op: Operation) {
                self.pending = true;
            }
            fn has_step(&self) -> bool {
                self.pending
            }
            fn step(&mut self, mem: &mut Memory<ConsWord>) -> StepEffect {
                mem.apply(slx_memory::Primitive::Read(self.reg)).unwrap();
                StepEffect::Ran
            }
        }
        impl StateCodec for Spinner {
            fn encode(&self, out: &mut Vec<u8>) {
                self.reg.encode(out);
                self.pending.encode(out);
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                Some(Spinner {
                    reg: slx_memory::ObjId::decode(input)?,
                    pending: bool::decode(input)?,
                })
            }
        }
        impl DeltaCodec for Spinner {}
        let mut mem: Memory<ConsWord> = Memory::new();
        let reg = mem.alloc_register(ConsWord::Bot);
        let mut sys = System::new(
            mem,
            vec![Spinner {
                reg,
                pending: false,
            }],
        );
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        let cex = verify_solo_progress(&sys, &[p(0)], 2, 50);
        assert_eq!(cex.map(|c| c.proc), Some(p(0)));
    }

    #[test]
    fn history_digest_is_order_sensitive() {
        let mut a = History::new();
        a.push(Action::invoke(p(0), Operation::Propose(v(1))));
        a.push(Action::invoke(p(1), Operation::Propose(v(2))));
        let mut b = History::new();
        b.push(Action::invoke(p(1), Operation::Propose(v(2))));
        b.push(Action::invoke(p(0), Operation::Propose(v(1))));
        assert_ne!(history_digest(&a), history_digest(&b));
        assert_eq!(history_digest(&a), history_digest(&a.clone()));
    }
}
