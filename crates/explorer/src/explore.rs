//! Exhaustive schedule enumeration with safety checking.

use std::collections::HashSet;
use std::hash::Hash;

use slx_history::{History, ProcessId};
use slx_memory::{Process, StepEffect, System, Word};
use slx_safety::SafetyProperty;

/// Result of an [`explore_safety`] run.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Distinct (configuration, digest) pairs visited.
    pub configs: usize,
    /// Violating histories found (search prunes below each violation).
    pub violations: Vec<History>,
    /// Whether the depth bound cut any branch (if `false`, the search was
    /// exhaustive: every schedule of the active processes, to quiescence).
    pub truncated: bool,
}

impl ExploreOutcome {
    /// Whether the property held everywhere explored.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Explores **all schedules** of the `active` processes from `initial`
/// (which should already contain its invocations), up to `depth` steps per
/// branch, checking `safety` on the history after every response.
///
/// `digest` must capture everything about the *past* history that the
/// safety property's future verdicts depend on (e.g. for consensus
/// agreement: the set of decided values). Configurations are deduplicated
/// on `(configuration, digest(history))`; with a faithful digest the
/// search is exact, not heuristic.
pub fn explore_safety<W, P, S>(
    initial: &System<W, P>,
    active: &[ProcessId],
    depth: usize,
    safety: &S,
    digest: impl Fn(&History) -> u64 + Copy,
) -> ExploreOutcome
where
    W: Word,
    P: Process<W> + Clone + Eq + Hash,
    S: SafetyProperty,
{
    let mut outcome = ExploreOutcome {
        configs: 0,
        violations: Vec::new(),
        truncated: false,
    };
    let mut seen: HashSet<(System<W, P>, u64)> = HashSet::new();
    let mut stack: Vec<(System<W, P>, usize)> = vec![(initial.clone(), 0)];
    while let Some((sys, d)) = stack.pop() {
        let key = (sys.clone(), digest(sys.history()));
        if !seen.insert(key) {
            continue;
        }
        outcome.configs += 1;
        if d >= depth {
            if !sys.quiescent() {
                outcome.truncated = true;
            }
            continue;
        }
        for &p in active {
            if !sys.can_step(p) {
                continue;
            }
            let mut next = sys.clone();
            let effect = next.step(p).expect("steppable process steps");
            if matches!(effect, StepEffect::Responded(_))
                && !safety.allows(next.history())
            {
                outcome.violations.push(next.history().clone());
                continue; // prune below the violation
            }
            stack.push((next, d + 1));
        }
    }
    outcome
}

/// A counterexample to solo progress: a reachable configuration from which
/// the pending process `proc`, running alone, fails to respond within the
/// step budget.
#[derive(Debug, Clone)]
pub struct SoloCounterexample {
    /// The starved process.
    pub proc: ProcessId,
    /// The history of the configuration from which the solo run starved.
    pub reached_by: History,
}

/// Verifies obstruction-freedom ((1,1)-freedom) exhaustively at small
/// scope: from **every** configuration reachable by scheduling the
/// `active` processes for up to `depth` steps, every pending process that
/// then runs **alone** responds within `solo_budget` steps.
///
/// Returns the first counterexample found, or `None` if the check passes.
pub fn verify_solo_progress<W, P>(
    initial: &System<W, P>,
    active: &[ProcessId],
    depth: usize,
    solo_budget: usize,
) -> Option<SoloCounterexample>
where
    W: Word,
    P: Process<W> + Clone + Eq + Hash,
{
    let mut seen: HashSet<System<W, P>> = HashSet::new();
    let mut stack: Vec<(System<W, P>, usize)> = vec![(initial.clone(), 0)];
    while let Some((sys, d)) = stack.pop() {
        if !seen.insert(sys.clone()) {
            continue;
        }
        // Solo check at this configuration.
        for &p in active {
            if !sys.is_pending(p) || sys.is_crashed(p) {
                continue;
            }
            let mut solo = sys.clone();
            let mut responded = false;
            for _ in 0..solo_budget {
                if !solo.can_step(p) {
                    break;
                }
                if let StepEffect::Responded(_) = solo.step(p).expect("steppable") {
                    responded = true;
                    break;
                }
            }
            if !responded {
                return Some(SoloCounterexample {
                    proc: p,
                    reached_by: sys.history().clone(),
                });
            }
        }
        if d >= depth {
            continue;
        }
        for &p in active {
            if sys.can_step(p) {
                let mut next = sys.clone();
                next.step(p).expect("steppable");
                stack.push((next, d + 1));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_consensus::{CasConsensus, ConsWord, ObstructionFreeConsensus};
    use slx_history::{Action, Operation, Response, Value};
    use slx_memory::Memory;
    use slx_safety::ConsensusSafety;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }

    /// Digest for consensus safety: proposals seen and decisions made.
    fn consensus_digest(h: &History) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher;
        let mut hasher = DefaultHasher::new();
        for a in h.iter() {
            match a {
                Action::Invoke { op, .. } => (1u8, op).hash(&mut hasher),
                Action::Respond { resp, .. } => (2u8, resp).hash(&mut hasher),
                Action::Crash { proc } => (3u8, proc).hash(&mut hasher),
            }
        }
        hasher.finish()
    }

    #[test]
    fn cas_consensus_safe_under_all_schedules() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let obj = CasConsensus::alloc(&mut mem);
        let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        let active = [p(0), p(1)];
        let out = explore_safety(
            &sys,
            &active,
            16,
            &ConsensusSafety::new(),
            consensus_digest,
        );
        assert!(out.holds(), "violations: {:?}", out.violations);
        assert!(!out.truncated, "depth 16 must finish 2×2-step processes");
        assert!(out.configs > 1);
    }

    #[test]
    fn of_consensus_safe_under_all_schedules_small_scope() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 8);
        let procs = vec![
            ObstructionFreeConsensus::new(layout.clone(), p(0), 2),
            ObstructionFreeConsensus::new(layout, p(1), 2),
        ];
        let mut sys = System::new(mem, procs);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        let active = [p(0), p(1)];
        let out = explore_safety(
            &sys,
            &active,
            26,
            &ConsensusSafety::new(),
            consensus_digest,
        );
        assert!(out.holds(), "violations: {:?}", out.violations);
        // Depth 26 truncates (the algorithm can run long under contention);
        // what matters is that no explored schedule violates safety.
        assert!(out.configs > 100);
    }

    #[test]
    fn explore_detects_injected_violation() {
        /// A broken "consensus" that decides its own value immediately.
        #[derive(Debug, Clone, PartialEq, Eq, Hash)]
        struct Selfish {
            pending: Option<Value>,
        }
        impl slx_memory::Process<ConsWord> for Selfish {
            fn on_invoke(&mut self, op: Operation) {
                if let Operation::Propose(v) = op {
                    self.pending = Some(v);
                }
            }
            fn has_step(&self) -> bool {
                self.pending.is_some()
            }
            fn step(&mut self, _mem: &mut Memory<ConsWord>) -> StepEffect {
                let v = self.pending.take().expect("pending");
                StepEffect::Responded(Response::Decided(v))
            }
        }
        let mem: Memory<ConsWord> = Memory::new();
        let mut sys = System::new(
            mem,
            vec![Selfish { pending: None }, Selfish { pending: None }],
        );
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        let out = explore_safety(
            &sys,
            &[p(0), p(1)],
            4,
            &ConsensusSafety::new(),
            consensus_digest,
        );
        assert!(!out.holds(), "disagreement must be found");
    }

    #[test]
    fn solo_progress_holds_for_of_consensus() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 16);
        let procs = vec![
            ObstructionFreeConsensus::new(layout.clone(), p(0), 2),
            ObstructionFreeConsensus::new(layout, p(1), 2),
        ];
        let mut sys = System::new(mem, procs);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        let cex = verify_solo_progress(&sys, &[p(0), p(1)], 14, 200);
        assert!(cex.is_none(), "starvation from {:?}", cex.map(|c| c.reached_by));
    }

    #[test]
    fn solo_progress_detects_spinner() {
        /// Spins forever on a register, never responding.
        #[derive(Debug, Clone, PartialEq, Eq, Hash)]
        struct Spinner {
            reg: slx_memory::ObjId,
            pending: bool,
        }
        impl slx_memory::Process<ConsWord> for Spinner {
            fn on_invoke(&mut self, _op: Operation) {
                self.pending = true;
            }
            fn has_step(&self) -> bool {
                self.pending
            }
            fn step(&mut self, mem: &mut Memory<ConsWord>) -> StepEffect {
                mem.apply(slx_memory::Primitive::Read(self.reg)).unwrap();
                StepEffect::Ran
            }
        }
        let mut mem: Memory<ConsWord> = Memory::new();
        let reg = mem.alloc_register(ConsWord::Bot);
        let mut sys = System::new(
            mem,
            vec![Spinner {
                reg,
                pending: false,
            }],
        );
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        let cex = verify_solo_progress(&sys, &[p(0)], 2, 50);
        assert_eq!(cex.map(|c| c.proc), Some(p(0)));
    }
}
