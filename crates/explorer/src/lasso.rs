//! Lasso detection: repeated configurations under deterministic schedulers.

use std::hash::Hash;

use slx_engine::DetHashMap;

use slx_memory::{Event, Process, Scheduler, System, Word};

/// A lasso: a finite stem followed by a cycle that the deterministic
/// system-plus-scheduler pair repeats forever.
///
/// Because both the system *and the scheduler state* repeated exactly, the
/// infinite execution `stem · cycle^ω` is a real execution of the system —
/// this is the constructive witness the liveness exclusion results need
/// (e.g.: a cycle with both processes stepping and no commit response is an
/// infinite fair execution violating (2,2)-freedom).
#[derive(Debug, Clone)]
pub struct CycleWitness {
    /// Events before the cycle starts.
    pub stem: Vec<Event>,
    /// Events of one cycle iteration (repeats forever).
    pub cycle: Vec<Event>,
}

impl CycleWitness {
    /// Events of `stem · cycle^k` — a finite unrolling, useful for feeding
    /// the window-based liveness evaluators. The output is sized up front
    /// (`stem + k·cycle` events), so unrolling long cycles never
    /// reallocates mid-copy.
    pub fn unroll(&self, k: usize) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.stem.len() + k * self.cycle.len());
        out.extend_from_slice(&self.stem);
        for _ in 0..k {
            out.extend_from_slice(&self.cycle);
        }
        out
    }

    /// The processes that take a computation step inside the cycle.
    pub fn cycle_steppers(&self) -> Vec<slx_history::ProcessId> {
        let mut out = Vec::new();
        for e in &self.cycle {
            if let Event::Stepped(p) = e {
                if !out.contains(p) {
                    out.push(*p);
                }
            }
        }
        out.sort();
        out
    }

    /// Whether any response on the cycle satisfies `good`.
    pub fn cycle_has_good_response(&self, good: impl Fn(slx_history::Response) -> bool) -> bool {
        self.cycle.iter().any(|e| match e {
            Event::Responded(_, r) => good(*r),
            _ => false,
        })
    }

    /// Evaluates a liveness property on the infinite execution
    /// `stem · cycle^ω`, **exactly**: the analysis window is one full cycle
    /// iteration (after a warm-up iteration), so "steps in the window"
    /// coincides with "takes infinitely many steps" and "good response in
    /// the window" with "receives infinitely many good responses". This is
    /// the evaluation the paper's Definition 5.1 calls for, with no
    /// finite-run approximation left.
    pub fn evaluate_liveness<L: slx_liveness::LivenessProperty>(
        &self,
        property: &L,
        n: usize,
        kind: slx_liveness::ProgressKind,
    ) -> bool {
        let events = self.unroll(2);
        let window_start = self.stem.len() + self.cycle.len();
        let view = slx_liveness::ExecutionView::new(&events, n, window_start, kind);
        property.satisfied(&view)
    }
}

/// Runs `scheduler` on `sys` and watches for a repeat of the combined
/// (system configuration, scheduler state). On a repeat, returns the
/// lasso; returns `None` if `max_events` elapse first or the run halts.
///
/// The scheduler must be deterministic for the witness to be meaningful;
/// the `Clone + Eq + Hash` bounds let the detector key on its state
/// exactly. This variant **retains full configuration clones** in its seen
/// map — it is the exact-comparison baseline the differential tests pin
/// the fingerprint-based [`run_until_cycle_keyed`] against, the same way
/// the exploration kernel is pinned against the retained-clone explorer.
/// Prefer [`run_until_cycle_keyed`] for long runs: it retains 16-byte
/// digests instead of configurations.
pub fn run_until_cycle<W, P, S>(
    sys: &mut System<W, P>,
    scheduler: &mut S,
    max_events: u64,
) -> Option<CycleWitness>
where
    W: Word,
    P: Process<W> + Clone + Eq + Hash,
    S: Scheduler<W, P> + Clone + Eq + Hash,
{
    run_until_cycle_keyed_retained(sys, scheduler, max_events, |sys, sched| {
        (sys.clone(), sched.clone())
    })
}

/// Like [`run_until_cycle`], but detects repeats of a caller-supplied
/// **key** instead of the raw configuration, and retains only the
/// 128-bit fingerprint of each key (via [`slx_engine::digest128_of`]) —
/// the same fingerprint-only discipline as the exploration kernel's
/// visited set, so arbitrarily long stems cost 16 bytes per distinct key
/// instead of a retained clone.
///
/// Keying is how cycles *modulo a symmetry* are found: algorithms whose
/// per-iteration state grows by a uniform shift (the TM version counter,
/// Algorithm 1's timestamps) never repeat a raw configuration, but their
/// behaviour is invariant under the shift, so a repeat of the normalized
/// key still witnesses an infinite execution (`slx-tm` provides the
/// normalizing maps and documents the invariance argument).
///
/// As with the kernel, fingerprinting trades exact key comparison for a
/// 2⁻¹²⁸-scale collision risk: a collision here would fabricate a cycle
/// between two distinct keys. At the run lengths this workspace drives
/// (≪ 2⁴⁰ events) the probability is astronomically below practical
/// concern, and the differential tests pin this detector against the
/// retained-key [`run_until_cycle_keyed_retained`] on every adversary
/// scenario.
pub fn run_until_cycle_keyed<W, P, S, K>(
    sys: &mut System<W, P>,
    scheduler: &mut S,
    max_events: u64,
    key: impl Fn(&System<W, P>, &S) -> K,
) -> Option<CycleWitness>
where
    W: Word,
    P: Process<W>,
    S: Scheduler<W, P>,
    K: Hash,
{
    let mut seen: DetHashMap<u128, usize> = DetHashMap::default();
    run_cycle_loop(sys, scheduler, max_events, |sys, sched, now| {
        let digest = slx_engine::digest128_of(&key(sys, sched)).0;
        match seen.entry(digest) {
            std::collections::hash_map::Entry::Occupied(first) => Some(*first.get()),
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(now);
                None
            }
        }
    })
}

/// [`run_until_cycle_keyed`] with the key **retained** (exact `Eq`
/// comparison, no fingerprinting): the collision-free baseline. The
/// differential tests pin the fingerprint path against this one; callers
/// wanting certainty over memory can use it directly.
pub fn run_until_cycle_keyed_retained<W, P, S, K>(
    sys: &mut System<W, P>,
    scheduler: &mut S,
    max_events: u64,
    key: impl Fn(&System<W, P>, &S) -> K,
) -> Option<CycleWitness>
where
    W: Word,
    P: Process<W>,
    S: Scheduler<W, P>,
    K: Hash + Eq,
{
    let mut seen: DetHashMap<K, usize> = DetHashMap::default();
    run_cycle_loop(sys, scheduler, max_events, |sys, sched, now| {
        match seen.entry(key(sys, sched)) {
            std::collections::hash_map::Entry::Occupied(first) => Some(*first.get()),
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(now);
                None
            }
        }
    })
}

/// The shared drive loop: runs the scheduler one decision at a time,
/// handing `(system, scheduler, events-so-far)` to `record` after every
/// event batch. `record` returns `Some(first)` when the current key was
/// first seen at event index `first`, which closes the lasso.
fn run_cycle_loop<W, P, S>(
    sys: &mut System<W, P>,
    scheduler: &mut S,
    max_events: u64,
    mut record: impl FnMut(&System<W, P>, &S, usize) -> Option<usize>,
) -> Option<CycleWitness>
where
    W: Word,
    P: Process<W>,
    S: Scheduler<W, P>,
{
    use slx_memory::Decision;

    let start_events = sys.events().len();
    // Seed the map with the starting key (trivially not a repeat).
    let _ = record(sys, scheduler, 0);

    for _ in 0..max_events {
        match scheduler.decide(sys) {
            Decision::Halt => return None,
            Decision::Invoke(p, op) => {
                if sys.invoke(p, op).is_err() {
                    return None;
                }
            }
            Decision::Step(p) => {
                if sys.step(p).is_err() {
                    return None;
                }
            }
            Decision::Crash(p) => {
                if sys.crash(p).is_err() {
                    return None;
                }
            }
        }
        let now = sys.events().len() - start_events;
        if let Some(first) = record(sys, scheduler, now) {
            let events = &sys.events()[start_events..];
            return Some(CycleWitness {
                stem: events[..first].to_vec(),
                cycle: events[first..now].to_vec(),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::{Operation, ProcessId, Response, Value};
    use slx_memory::{Decision, Memory, StepEffect};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// A process that loops through 3 internal states forever.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Looper {
        phase: u8,
        pending: bool,
    }

    impl slx_memory::Process<i64> for Looper {
        fn on_invoke(&mut self, _op: Operation) {
            self.pending = true;
        }
        fn has_step(&self) -> bool {
            self.pending
        }
        fn step(&mut self, _mem: &mut Memory<i64>) -> StepEffect {
            self.phase = (self.phase + 1) % 3;
            StepEffect::Ran
        }
    }

    /// Deterministic: always step p1.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct AlwaysP0;

    impl slx_memory::Scheduler<i64, Looper> for AlwaysP0 {
        fn decide(&mut self, sys: &System<i64, Looper>) -> Decision {
            if sys.can_step(p(0)) {
                Decision::Step(p(0))
            } else {
                Decision::Halt
            }
        }
    }

    #[test]
    fn detects_three_step_cycle() {
        let mem: Memory<i64> = Memory::new();
        let mut sys = System::new(
            mem,
            vec![Looper {
                phase: 0,
                pending: false,
            }],
        );
        sys.invoke(p(0), Operation::Propose(Value::new(0))).unwrap();
        let mut sched = AlwaysP0;
        let w = run_until_cycle(&mut sys, &mut sched, 100).expect("cycle exists");
        assert_eq!(w.cycle.len(), 3);
        assert_eq!(w.cycle_steppers(), vec![p(0)]);
        assert!(!w.cycle_has_good_response(|_| true));
        // Unrolling includes the stem plus k cycles.
        assert_eq!(w.unroll(2).len(), w.stem.len() + 6);
    }

    /// A process that responds after 2 steps — no cycle while productive.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Finisher {
        remaining: u8,
    }

    impl slx_memory::Process<i64> for Finisher {
        fn on_invoke(&mut self, _op: Operation) {
            self.remaining = 2;
        }
        fn has_step(&self) -> bool {
            self.remaining > 0
        }
        fn step(&mut self, _mem: &mut Memory<i64>) -> StepEffect {
            self.remaining -= 1;
            if self.remaining == 0 {
                StepEffect::Responded(Response::Ok)
            } else {
                StepEffect::Ran
            }
        }
    }

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct StepOnce;

    impl slx_memory::Scheduler<i64, Finisher> for StepOnce {
        fn decide(&mut self, sys: &System<i64, Finisher>) -> Decision {
            if sys.can_step(p(0)) {
                Decision::Step(p(0))
            } else {
                Decision::Halt
            }
        }
    }

    #[test]
    fn halting_run_yields_no_cycle() {
        let mem: Memory<i64> = Memory::new();
        let mut sys = System::new(mem, vec![Finisher { remaining: 0 }]);
        sys.invoke(p(0), Operation::Propose(Value::new(0))).unwrap();
        let mut sched = StepOnce;
        assert!(run_until_cycle(&mut sys, &mut sched, 100).is_none());
    }
}
