//! The pre-engine ("retained clone") reference implementations.
//!
//! These are the seed's single-threaded search loops, kept verbatim for
//! two jobs: (1) the benchmark harness measures the `slx-engine` kernel's
//! states/sec against them, and (2) the differential test suite checks the
//! kernel reproduces their verdicts exactly. They deduplicate on a
//! set of **fully retained** `(System, digest)` clones — the memory
//! and hashing cost the fingerprint-based kernel removes — and should not
//! be used by new checkers.

use std::collections::{BTreeSet, VecDeque};
use std::hash::Hash;

use slx_engine::{DetHashSet, Stopwatch};
use slx_history::{History, ProcessId, Response};
use slx_memory::{Process, StepEffect, System, Word};
use slx_safety::SafetyProperty;

use crate::explore::ExploreOutcome;
use crate::valence::DecidableSet;

/// Seed implementation of [`crate::explore_safety`]: sequential DFS over
/// retained `(System, u64)` clones, `DefaultHasher`-free only in name —
/// every visited configuration stays resident in the visited set.
pub fn explore_safety_retained<W, P, S>(
    initial: &System<W, P>,
    active: &[ProcessId],
    depth: usize,
    safety: &S,
    digest: impl Fn(&History) -> u64 + Copy,
) -> ExploreOutcome
where
    W: Word,
    P: Process<W> + Clone + Eq + Hash,
    S: SafetyProperty,
{
    let mut outcome = ExploreOutcome {
        configs: 0,
        violations: Vec::new(),
        truncated: false,
        stats: slx_engine::ExploreStats::default(),
    };
    let start = Stopwatch::start();
    let mut seen: DetHashSet<(System<W, P>, u64)> = DetHashSet::default();
    let mut stack: Vec<(System<W, P>, usize)> = vec![(initial.clone(), 0)];
    while let Some((sys, d)) = stack.pop() {
        let key = (sys.clone(), digest(sys.history()));
        if !seen.insert(key) {
            continue;
        }
        outcome.configs += 1;
        if d >= depth {
            if !sys.quiescent() {
                outcome.truncated = true;
            }
            continue;
        }
        for &p in active {
            if !sys.can_step(p) {
                continue;
            }
            let mut next = sys.clone();
            let effect = next.step(p).expect("steppable process steps");
            if matches!(effect, StepEffect::Responded(_)) && !safety.allows(next.history()) {
                outcome.violations.push(next.history().clone());
                continue; // prune below the violation
            }
            stack.push((next, d + 1));
        }
    }
    outcome.stats.configs = outcome.configs;
    outcome.stats.truncated = outcome.truncated;
    outcome.stats.threads = 1;
    outcome.stats.elapsed = start.elapsed();
    outcome
}

/// Seed implementation of [`crate::decidable_values`]: sequential BFS over
/// retained `System` clones.
pub fn decidable_values_retained<W, P>(
    sys: &System<W, P>,
    active: &[ProcessId],
    budget: usize,
) -> DecidableSet
where
    W: Word,
    P: Process<W> + Clone + Eq + Hash,
{
    let mut out = DecidableSet {
        values: BTreeSet::new(),
        truncated: false,
        configs: 0,
    };
    let mut seen: DetHashSet<System<W, P>> = DetHashSet::default();
    let mut queue: VecDeque<System<W, P>> = VecDeque::new();
    queue.push_back(sys.clone());
    while let Some(s) = queue.pop_front() {
        if !seen.insert(s.clone()) {
            continue;
        }
        out.configs += 1;
        if out.configs >= budget {
            out.truncated = true;
            break;
        }
        for &p in active {
            if !s.can_step(p) {
                continue;
            }
            let mut next = s.clone();
            match next.step(p).expect("steppable") {
                StepEffect::Responded(Response::Decided(v)) => {
                    out.values.insert(v);
                }
                _ => queue.push_back(next),
            }
        }
        // Early exit once bivalence is witnessed: callers only need two.
        if out.values.len() >= 2 {
            return out;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_consensus::{CasConsensus, ConsWord};
    use slx_history::{Operation, Value};
    use slx_memory::Memory;
    use slx_safety::ConsensusSafety;

    #[test]
    fn baseline_still_reproduces_seed_verdicts() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let obj = CasConsensus::alloc(&mut mem);
        let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
        let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
        sys.invoke(p0, Operation::Propose(Value::new(1))).unwrap();
        sys.invoke(p1, Operation::Propose(Value::new(2))).unwrap();
        let out = explore_safety_retained(
            &sys,
            &[p0, p1],
            16,
            &ConsensusSafety::new(),
            crate::history_digest,
        );
        assert!(out.holds());
        assert!(!out.truncated);
        let d = decidable_values_retained(&sys, &[p0, p1], 10_000);
        assert!(d.bivalent());
    }
}
