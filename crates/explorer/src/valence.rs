//! Valence analysis for consensus configurations.

use std::collections::BTreeSet;
use std::hash::Hash;

use slx_engine::{Checker, DeltaCodec, Digest, Expansion, StateSpace};
use slx_history::{ProcessId, Response, Value};
use slx_memory::{Process, StepEffect, System, Word};

/// Values decidable from a configuration, with a truncation flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecidableSet {
    /// Values for which some schedule reaches a decision.
    pub values: BTreeSet<Value>,
    /// Whether the search budget cut branches (found values are still
    /// genuinely decidable; absent values might be too).
    pub truncated: bool,
    /// Configurations explored.
    pub configs: usize,
}

impl DecidableSet {
    /// Whether the configuration is (witnessed) bivalent: at least two
    /// distinct reachable decisions. A `true` answer is exact — both
    /// witnesses are real schedules.
    pub fn bivalent(&self) -> bool {
        self.values.len() >= 2
    }
}

/// The valence state space: schedules of the active processes, recording
/// each first decision as a finding and not exploring past it.
struct ValenceSpace<'a, W, P> {
    active: &'a [ProcessId],
    /// Whether `active` covers every process — symmetry reduction is only
    /// sound when the active set is permutation-closed.
    all_active: bool,
    _marker: std::marker::PhantomData<(W, P)>,
}

impl<W, P> StateSpace for ValenceSpace<'_, W, P>
where
    W: Word + DeltaCodec + Send + Sync,
    P: Process<W> + DeltaCodec + Clone + Eq + Hash + Send + Sync,
{
    type State = System<W, P>;
    type Finding = Value;

    fn digest(&self, sys: &Self::State) -> Digest {
        sys.digest128()
    }

    fn has_symmetry_reduction(&self) -> bool {
        self.all_active && P::has_symmetry_reduction()
    }

    fn canonical_digest(&self, sys: &Self::State) -> Digest {
        // The decidable-value set is symmetry-invariant: a permutation
        // relabels which process decides, never the decided value, and
        // the shifts never touch values. So one representative per orbit
        // yields the same valence verdict.
        P::canonical_system_digest(sys)
    }

    fn expand(&self, sys: &Self::State, _depth: usize, ctx: &mut Expansion<Self>) {
        ctx.reserve(self.active.len());
        for &p in self.active {
            if !sys.can_step(p) {
                continue;
            }
            let mut next = sys.clone();
            match next.step(p).expect("steppable") {
                StepEffect::Responded(Response::Decided(v)) => {
                    // A decision seals the configuration's fate; record and
                    // do not explore past it (agreement makes the rest
                    // univalent, and we only need first decisions).
                    ctx.finding(v);
                }
                _ => ctx.push(next),
            }
        }
    }

    /// The valence replay fast path: rebuilds only the `index`-th pushed
    /// successor (deciding steps are findings, not pushes, and stay
    /// unrecorded here exactly as the replay requires). Must mirror
    /// `expand`'s push order; the spilled-valence differential pins it.
    fn successor_at(&self, sys: &Self::State, _depth: usize, index: usize) -> Option<Self::State> {
        let mut pushed = 0usize;
        for &p in self.active {
            if !sys.can_step(p) {
                continue;
            }
            let mut next = sys.clone();
            match next.step(p).expect("steppable") {
                StepEffect::Responded(Response::Decided(_)) => {}
                _ => {
                    if pushed == index {
                        return Some(next);
                    }
                    pushed += 1;
                }
            }
        }
        None
    }

    fn has_successor_fast_path(&self) -> bool {
        true
    }
}

/// Computes the set of values decidable from `sys` by scheduling only the
/// `active` processes (no crashes, no further invocations), exploring at
/// most `budget` configurations (frontier BFS on the `slx-engine` kernel,
/// fingerprint-memoized, stopping as soon as bivalence is witnessed —
/// callers only need two values).
///
/// This is the engine of the Chor–Israeli–Li-style adversary: from a
/// bivalent configuration the adversary steps whichever process keeps the
/// successor bivalent, and this function supplies the bivalence witnesses.
/// BFS order matters: solo runs decide quickly, so both witnesses are
/// usually found within a few hundred configurations.
pub fn decidable_values<W, P>(
    sys: &System<W, P>,
    active: &[ProcessId],
    budget: usize,
) -> DecidableSet
where
    W: Word + DeltaCodec + Send + Sync,
    P: Process<W> + DeltaCodec + Clone + Eq + Hash + Send + Sync,
{
    decidable_values_with(&Checker::auto(), sys, active, budget)
}

/// [`decidable_values`] on an explicit kernel backend/checker. The
/// bivalence adversary reuses one checker across its thousands of valence
/// queries.
pub fn decidable_values_with<W, P>(
    checker: &Checker,
    sys: &System<W, P>,
    active: &[ProcessId],
    budget: usize,
) -> DecidableSet
where
    W: Word + DeltaCodec + Send + Sync,
    P: Process<W> + DeltaCodec + Clone + Eq + Hash + Send + Sync,
{
    let space = ValenceSpace {
        active,
        all_active: crate::explore::covers_all_processes(active, sys.n()),
        _marker: std::marker::PhantomData,
    };
    // The retained seed implementation counted the budget-th state but
    // stopped *before* expanding it, so it expanded at most `budget - 1`
    // states and reported truncation iff at least `budget` distinct
    // configurations were reachable. The kernel expands exactly its budget
    // and truncates iff more remained, so `budget - 1` reproduces the seed
    // verdicts (values, bivalence, truncated) exactly.
    let mut distinct: BTreeSet<Value> = BTreeSet::new();
    let mut cursor = 0usize;
    let out = checker
        .clone()
        .with_budget(budget.saturating_sub(1))
        .run_until(&space, vec![sys.clone()], |found| {
            for v in &found[cursor..] {
                distinct.insert(*v);
            }
            cursor = found.len();
            distinct.len() >= 2
        });
    for v in &out.findings[cursor..] {
        distinct.insert(*v);
    }
    DecidableSet {
        values: distinct,
        truncated: out.stats.truncated,
        configs: out.stats.configs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_consensus::{CasConsensus, ConsWord, ObstructionFreeConsensus};
    use slx_history::Operation;
    use slx_memory::Memory;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }

    #[test]
    fn initial_cas_consensus_config_is_bivalent() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let obj = CasConsensus::alloc(&mut mem);
        let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        let d = decidable_values(&sys, &[p(0), p(1)], 10_000);
        assert!(d.bivalent(), "{d:?}");
    }

    #[test]
    fn after_cas_lands_config_is_univalent() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let obj = CasConsensus::alloc(&mut mem);
        let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        sys.step(p(0)).unwrap(); // p1's CAS decides the outcome
        let d = decidable_values(&sys, &[p(0), p(1)], 10_000);
        assert_eq!(d.values, BTreeSet::from([v(1)]));
        assert!(!d.bivalent());
        assert!(!d.truncated);
    }

    #[test]
    fn of_consensus_initial_config_is_bivalent() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 32);
        let procs = vec![
            ObstructionFreeConsensus::new(layout.clone(), p(0), 2),
            ObstructionFreeConsensus::new(layout, p(1), 2),
        ];
        let mut sys = System::new(mem, procs);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        let d = decidable_values(&sys, &[p(0), p(1)], 50_000);
        assert!(d.bivalent(), "{d:?}");
    }

    #[test]
    fn same_proposals_yield_single_value() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let obj = CasConsensus::alloc(&mut mem);
        let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
        sys.invoke(p(0), Operation::Propose(v(5))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(5))).unwrap();
        let d = decidable_values(&sys, &[p(0), p(1)], 10_000);
        assert_eq!(d.values, BTreeSet::from([v(5)]));
    }

    #[test]
    fn backends_agree_on_valence() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let obj = CasConsensus::alloc(&mut mem);
        let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        sys.step(p(0)).unwrap();
        let bfs = decidable_values_with(&Checker::parallel_bfs(2), &sys, &[p(0), p(1)], 10_000);
        let dfs = decidable_values_with(&Checker::sequential_dfs(), &sys, &[p(0), p(1)], 10_000);
        assert_eq!(bfs.values, dfs.values);
        assert_eq!(bfs.configs, dfs.configs);
    }
}
