//! Valence analysis for consensus configurations.

use std::collections::{BTreeSet, HashSet, VecDeque};
use std::hash::Hash;

use slx_history::{ProcessId, Response, Value};
use slx_memory::{Process, StepEffect, System, Word};

/// Values decidable from a configuration, with a truncation flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecidableSet {
    /// Values for which some schedule reaches a decision.
    pub values: BTreeSet<Value>,
    /// Whether the search budget cut branches (found values are still
    /// genuinely decidable; absent values might be too).
    pub truncated: bool,
    /// Configurations explored.
    pub configs: usize,
}

impl DecidableSet {
    /// Whether the configuration is (witnessed) bivalent: at least two
    /// distinct reachable decisions. A `true` answer is exact — both
    /// witnesses are real schedules.
    pub fn bivalent(&self) -> bool {
        self.values.len() >= 2
    }
}

/// Computes the set of values decidable from `sys` by scheduling only the
/// `active` processes (no crashes, no further invocations), exploring at
/// most `budget` configurations (BFS, memoized).
///
/// This is the engine of the Chor–Israeli–Li-style adversary: from a
/// bivalent configuration the adversary steps whichever process keeps the
/// successor bivalent, and this function supplies the bivalence witnesses.
/// BFS order matters: solo runs decide quickly, so both witnesses are
/// usually found within a few hundred configurations.
pub fn decidable_values<W, P>(
    sys: &System<W, P>,
    active: &[ProcessId],
    budget: usize,
) -> DecidableSet
where
    W: Word,
    P: Process<W> + Clone + Eq + Hash,
{
    let mut out = DecidableSet {
        values: BTreeSet::new(),
        truncated: false,
        configs: 0,
    };
    let mut seen: HashSet<System<W, P>> = HashSet::new();
    let mut queue: VecDeque<System<W, P>> = VecDeque::new();
    queue.push_back(sys.clone());
    while let Some(s) = queue.pop_front() {
        if !seen.insert(s.clone()) {
            continue;
        }
        out.configs += 1;
        if out.configs >= budget {
            out.truncated = true;
            break;
        }
        for &p in active {
            if !s.can_step(p) {
                continue;
            }
            let mut next = s.clone();
            match next.step(p).expect("steppable") {
                StepEffect::Responded(Response::Decided(v)) => {
                    // A decision seals the configuration's fate; record and
                    // do not explore past it (agreement makes the rest
                    // univalent, and we only need first decisions).
                    out.values.insert(v);
                }
                _ => queue.push_back(next),
            }
        }
        // Early exit once bivalence is witnessed: callers only need two.
        if out.values.len() >= 2 {
            return out;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_consensus::{CasConsensus, ConsWord, ObstructionFreeConsensus};
    use slx_history::Operation;
    use slx_memory::Memory;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }

    #[test]
    fn initial_cas_consensus_config_is_bivalent() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let obj = CasConsensus::alloc(&mut mem);
        let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        let d = decidable_values(&sys, &[p(0), p(1)], 10_000);
        assert!(d.bivalent(), "{d:?}");
    }

    #[test]
    fn after_cas_lands_config_is_univalent() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let obj = CasConsensus::alloc(&mut mem);
        let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        sys.step(p(0)).unwrap(); // p1's CAS decides the outcome
        let d = decidable_values(&sys, &[p(0), p(1)], 10_000);
        assert_eq!(d.values, BTreeSet::from([v(1)]));
        assert!(!d.bivalent());
        assert!(!d.truncated);
    }

    #[test]
    fn of_consensus_initial_config_is_bivalent() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 32);
        let procs = vec![
            ObstructionFreeConsensus::new(layout.clone(), p(0), 2),
            ObstructionFreeConsensus::new(layout, p(1), 2),
        ];
        let mut sys = System::new(mem, procs);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        let d = decidable_values(&sys, &[p(0), p(1)], 50_000);
        assert!(d.bivalent(), "{d:?}");
    }

    #[test]
    fn same_proposals_yield_single_value() {
        let mut mem: Memory<ConsWord> = Memory::new();
        let obj = CasConsensus::alloc(&mut mem);
        let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
        sys.invoke(p(0), Operation::Propose(v(5))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(5))).unwrap();
        let d = decidable_values(&sys, &[p(0), p(1)], 10_000);
        assert_eq!(d.values, BTreeSet::from([v(5)]));
    }
}
