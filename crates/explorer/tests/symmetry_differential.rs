//! Differential tests of the kernel's symmetry reduction.
//!
//! Symmetry reduction is a *quotient*, not an approximation: every
//! safety, valence, and solo-progress verdict must be identical with the
//! reduction on and off — only the visited-configuration counts shrink.
//! These suites pin that equivalence across the full execution matrix
//! the kernel supports: {1, 2, 4} worker threads × {resident, plain,
//! delta, replay} spill arms, plus the sequential DFS backend, on both
//! seed scenarios (register consensus and the TM commit race).

use slx_consensus::{CasConsensus, ConsWord, ObstructionFreeConsensus};
use slx_engine::{Checker, SpillCodec};
use slx_explorer::{
    decidable_values_with, explore_safety_with, history_digest, verify_solo_progress_with,
};
use slx_history::{Operation, ProcessId, Value, VarId};
use slx_memory::{Memory, System};
use slx_safety::{ConsensusSafety, Opacity};
use slx_tm::{AgpTm, TmWord};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn v(x: i64) -> Value {
    Value::new(x)
}

/// `n` proposers with the given input vector. Permutation orbits are as
/// large as the input vector is symmetric: distinct inputs pin process
/// identities (a permuted state swaps who holds which value), equal
/// inputs leave whole orbits to collapse.
fn of_consensus_scenario(inputs: &[i64]) -> System<ConsWord, ObstructionFreeConsensus> {
    let n = inputs.len();
    let mut mem: Memory<ConsWord> = Memory::new();
    let layout = ObstructionFreeConsensus::layout(&mut mem, n, 16);
    let procs = (0..n)
        .map(|i| ObstructionFreeConsensus::new(layout.clone(), p(i), n))
        .collect();
    let mut sys = System::new(mem, procs);
    for (i, &input) in inputs.iter().enumerate() {
        sys.invoke(p(i), Operation::Propose(v(input))).unwrap();
    }
    sys
}

fn cas_consensus_scenario() -> System<ConsWord, CasConsensus> {
    let mut mem: Memory<ConsWord> = Memory::new();
    let obj = CasConsensus::alloc(&mut mem);
    let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
    sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
    sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
    sys
}

fn complete_op(sys: &mut System<TmWord, AgpTm>, proc: ProcessId, op: Operation) {
    sys.invoke(proc, op).unwrap();
    for _ in 0..100 {
        if !sys.is_pending(proc) {
            return;
        }
        sys.step(proc).unwrap();
    }
    panic!("operation did not complete within 100 solo steps");
}

/// The TM commit race, symmetric edition: two Algorithm I(1,2)
/// transactions read `x` and wrote the *same* value, both with a pending
/// `tryC`. AGP's commit is multi-step (timestamp scan, then CAS), so the
/// pre-response bulk has genuine interleavings sharing one history — and
/// with identical inputs the two processes are fully interchangeable
/// there, so mid-commit twins collapse. (The simpler `GlobalVersionTm`
/// responds on every single step, which pins each successor to a
/// distinct history immediately: its symmetry lives in the lasso/shift
/// detectors, not in safety exploration.)
fn tm_scenario() -> System<TmWord, AgpTm> {
    let mut mem: Memory<TmWord> = Memory::new();
    let (c, r) = AgpTm::alloc(&mut mem, 2, 1);
    let procs = (0..2).map(|i| AgpTm::new(c, r, p(i), 2, 1)).collect();
    let mut sys = System::new(mem, procs);
    let x = VarId::new(0);
    for i in 0..2 {
        complete_op(&mut sys, p(i), Operation::TxStart);
        complete_op(&mut sys, p(i), Operation::TxRead(x));
        complete_op(&mut sys, p(i), Operation::TxWrite(x, v(7)));
    }
    sys.invoke(p(0), Operation::TxCommit).unwrap();
    sys.invoke(p(1), Operation::TxCommit).unwrap();
    sys
}

/// The tentpole pin: symmetry-on runs report exactly the verdicts of
/// symmetry-off runs on both seed scenarios, across {1, 2, 4} worker
/// threads × {resident, plain, delta, replay} spill arms, while visiting
/// strictly fewer configurations and accounting every collapse in
/// `orbit_hits`. Reduced counts are themselves deterministic across the
/// whole matrix — the canonical digest is a function of the state, not of
/// the schedule that reached it.
#[test]
fn symmetry_preserves_safety_verdicts_across_spill_and_thread_matrix() {
    let consensus = of_consensus_scenario(&[1, 2]);
    let tm = tm_scenario();
    let active = [p(0), p(1)];
    let consensus_safety = ConsensusSafety::new();
    let tm_safety = Opacity::new(v(0));

    let off = Checker::parallel_bfs(1)
        .with_shards(1)
        .with_mem_budget(0)
        .with_symmetry(false);
    let consensus_off = explore_safety_with(
        &off,
        &consensus,
        &active,
        14,
        &consensus_safety,
        history_digest,
    );
    let tm_off = explore_safety_with(&off, &tm, &active, 20, &tm_safety, history_digest);
    assert!(consensus_off.holds());
    assert!(tm_off.holds());
    assert!(!consensus_off.stats.symmetry);
    assert_eq!(consensus_off.stats.orbit_hits, 0, "no reduction, no orbits");
    assert_eq!(tm_off.stats.orbit_hits, 0);

    let on = off.clone().with_symmetry(true);
    let consensus_on = explore_safety_with(
        &on,
        &consensus,
        &active,
        14,
        &consensus_safety,
        history_digest,
    );
    let tm_on = explore_safety_with(&on, &tm, &active, 20, &tm_safety, history_digest);
    for (reduced, full, name) in [
        (&consensus_on, &consensus_off, "consensus"),
        (&tm_on, &tm_off, "tm"),
    ] {
        assert_eq!(reduced.holds(), full.holds(), "{name}");
        assert_eq!(reduced.truncated, full.truncated, "{name}");
        assert_eq!(reduced.violations, full.violations, "{name}");
        assert!(reduced.stats.symmetry, "{name}");
        assert!(
            reduced.configs < full.configs,
            "{name}: the quotient must shrink the visited set \
             ({} !< {})",
            reduced.configs,
            full.configs
        );
        assert!(
            reduced.stats.orbit_hits > 0,
            "{name}: collapsed orbits must be accounted"
        );
    }

    // 256 bytes forces several spill chunks per level (see the spill
    // differential suite for the calibration).
    const TINY_BUDGET: usize = 256;
    for threads in [1usize, 2, 4] {
        for (mem_budget, codec) in [
            (0usize, SpillCodec::Delta), // resident: budget 0 never spills
            (TINY_BUDGET, SpillCodec::Plain),
            (TINY_BUDGET, SpillCodec::Delta),
            (TINY_BUDGET, SpillCodec::Replay),
        ] {
            let checker = Checker::parallel_bfs(threads)
                .with_shards(4)
                .with_mem_budget(mem_budget)
                .with_spill_codec(codec)
                .with_symmetry(true);
            let label = format!("{threads} threads, mem {mem_budget}, {codec:?}");

            let c = explore_safety_with(
                &checker,
                &consensus,
                &active,
                14,
                &consensus_safety,
                history_digest,
            );
            assert_eq!(c.holds(), consensus_off.holds(), "consensus, {label}");
            assert_eq!(c.configs, consensus_on.configs, "consensus, {label}");
            assert_eq!(c.truncated, consensus_on.truncated, "consensus, {label}");
            assert_eq!(
                c.stats.orbit_hits, consensus_on.stats.orbit_hits,
                "consensus, {label}: orbit accounting must be deterministic"
            );
            if mem_budget > 0 {
                assert!(c.stats.spilled_chunks >= 2, "consensus, {label} must spill");
            } else {
                assert_eq!(c.stats.spilled_chunks, 0, "consensus, {label}");
            }

            let t = explore_safety_with(&checker, &tm, &active, 20, &tm_safety, history_digest);
            assert_eq!(t.holds(), tm_off.holds(), "tm, {label}");
            assert_eq!(t.configs, tm_on.configs, "tm, {label}");
            assert_eq!(t.truncated, tm_on.truncated, "tm, {label}");
            assert_eq!(t.stats.orbit_hits, tm_on.stats.orbit_hits, "tm, {label}");
        }
    }

    // The DFS backend closes the matrix: same quotient, same verdicts.
    let dfs = Checker::sequential_dfs().with_symmetry(true);
    let c_dfs = explore_safety_with(
        &dfs,
        &consensus,
        &active,
        14,
        &consensus_safety,
        history_digest,
    );
    assert_eq!(c_dfs.holds(), consensus_off.holds());
    assert_eq!(c_dfs.configs, consensus_on.configs);
    let t_dfs = explore_safety_with(&dfs, &tm, &active, 20, &tm_safety, history_digest);
    assert_eq!(t_dfs.holds(), tm_off.holds());
    assert_eq!(t_dfs.configs, tm_on.configs);
}

/// Three fully symmetric processes collapse much harder than two: the
/// permutation orbit of a generic configuration has up to 3! = 6
/// elements. At the Fig-1a exploration depth the quotient must at least
/// halve the visited set — the bench's `sym` arm measures the same ratio
/// at full depth.
#[test]
fn three_process_orbits_at_least_halve_the_visited_set() {
    let consensus = of_consensus_scenario(&[5, 5, 5]);
    let active = [p(0), p(1), p(2)];
    let safety = ConsensusSafety::new();
    let full = explore_safety_with(
        &Checker::auto().with_symmetry(false),
        &consensus,
        &active,
        10,
        &safety,
        history_digest,
    );
    let reduced = explore_safety_with(
        &Checker::auto().with_symmetry(true),
        &consensus,
        &active,
        10,
        &safety,
        history_digest,
    );
    assert_eq!(reduced.holds(), full.holds());
    assert_eq!(reduced.truncated, full.truncated);
    assert!(
        reduced.configs * 2 <= full.configs,
        "3-process orbits must at least halve the visited set \
         ({} vs {})",
        reduced.configs,
        full.configs
    );
    assert!(reduced.stats.orbit_hits > 0);
}

/// Valence verdicts (the bivalence adversary's inner query) are
/// permutation-invariant: a permutation relabels *who* decides, never
/// *which value*. With ample budget the reachable decision sets must
/// coincide exactly; the CAS scenario has no symmetry capability, so the
/// request must be inert there (identical counts, zero orbit hits).
#[test]
fn symmetry_preserves_valence_verdicts() {
    let of = of_consensus_scenario(&[1, 2]);
    let cas = cas_consensus_scenario();
    let active = [p(0), p(1)];
    let off = Checker::auto().with_symmetry(false);
    let on = Checker::auto().with_symmetry(true);
    for budget in [50usize, 10_000] {
        let of_off = decidable_values_with(&off, &of, &active, budget);
        let of_on = decidable_values_with(&on, &of, &active, budget);
        assert_eq!(of_on.values, of_off.values, "of, budget {budget}");
        assert_eq!(of_on.bivalent(), of_off.bivalent(), "of, budget {budget}");
        if !of_off.truncated && !of_on.truncated {
            assert!(
                of_on.configs <= of_off.configs,
                "of, budget {budget}: the quotient never grows the visited set"
            );
        }

        let cas_off = decidable_values_with(&off, &cas, &active, budget);
        let cas_on = decidable_values_with(&on, &cas, &active, budget);
        assert_eq!(cas_on.values, cas_off.values, "cas, budget {budget}");
        assert_eq!(
            cas_on.configs, cas_off.configs,
            "cas, budget {budget}: no capability, no reduction"
        );
        assert_eq!(cas_on.truncated, cas_off.truncated, "cas, budget {budget}");
    }
}

/// Solo-progress (obstruction-freedom) verification is symmetry-invariant
/// too: a starving process in the quotient is a starving process in some
/// representative. Both arms must certify the seed scenario.
#[test]
fn symmetry_preserves_solo_progress_verdicts() {
    let of = of_consensus_scenario(&[1, 2]);
    let active = [p(0), p(1)];
    let off =
        verify_solo_progress_with(&Checker::auto().with_symmetry(false), &of, &active, 10, 200);
    let on = verify_solo_progress_with(&Checker::auto().with_symmetry(true), &of, &active, 10, 200);
    assert!(off.is_none(), "the seed scenario is obstruction-free");
    assert!(on.is_none(), "the quotient must certify it too");
}

/// A partial active set is not permutation-closed: exploring only p0's
/// schedules from an asymmetric start must *not* quotient p0 against the
/// inert p1. The capability gate keys on the active set covering all
/// processes, so symmetry-on and symmetry-off runs coincide exactly.
#[test]
fn partial_active_sets_disable_the_quotient() {
    let of = of_consensus_scenario(&[1, 2]);
    let active = [p(0)];
    let safety = ConsensusSafety::new();
    let off = explore_safety_with(
        &Checker::auto().with_symmetry(false),
        &of,
        &active,
        12,
        &safety,
        history_digest,
    );
    let on = explore_safety_with(
        &Checker::auto().with_symmetry(true),
        &of,
        &active,
        12,
        &safety,
        history_digest,
    );
    assert_eq!(on.configs, off.configs, "gate must hold the quotient off");
    assert_eq!(on.stats.orbit_hits, 0);
    assert!(
        !on.stats.symmetry,
        "space must not advertise the capability"
    );
}
