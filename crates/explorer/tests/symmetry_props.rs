//! Property tests of the canonical symmetry digests.
//!
//! Randomized, seed-pinned (SplitMix64) exercises of the invariants the
//! symmetry reduction rests on: canonical digests must be invariant
//! under process permutations (at permutation-safe configurations for
//! consensus, everywhere for the TM workloads) and under the uniform
//! shifts (rounds, versions) the normal forms quotient away. Roughly
//! 600 cases across the three workloads, all deterministic.

use slx_consensus::{
    canonical_of_digest, permutation_safe, permuted_of_system, ConsWord, ObstructionFreeConsensus,
};
use slx_history::{Operation, ProcessId, Value, VarId};
use slx_memory::{Memory, System};
use slx_tm::normalize::{
    canonical_agp_digest, canonical_global_version_digest, permuted_agp, permuted_global_version,
};
use slx_tm::{AgpTm, GlobalVersionTm, TmWord};

/// SplitMix64 — the workspace's dependency-free test PRNG (same
/// construction as the engine harnesses).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// A uniform random permutation of `0..n` (Fisher–Yates).
    fn perm(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            p.swap(i, self.below(i as u64 + 1) as usize);
        }
        p
    }
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn v(x: i64) -> Value {
    Value::new(x)
}

fn of_system(inputs: &[i64]) -> System<ConsWord, ObstructionFreeConsensus> {
    let n = inputs.len();
    let mut mem: Memory<ConsWord> = Memory::new();
    let layout = ObstructionFreeConsensus::layout(&mut mem, n, 16);
    let procs = (0..n)
        .map(|i| ObstructionFreeConsensus::new(layout.clone(), p(i), n))
        .collect();
    let mut sys = System::new(mem, procs);
    for (i, &input) in inputs.iter().enumerate() {
        sys.invoke(p(i), Operation::Propose(v(input))).unwrap();
    }
    sys
}

/// Step a uniformly random pending process, if any; returns whether a
/// step happened.
fn step_random<W, P>(sys: &mut System<W, P>, rng: &mut Rng, n: usize) -> bool
where
    W: slx_memory::Word,
    P: slx_memory::Process<W>,
{
    let pending: Vec<usize> = (0..n).filter(|&i| sys.is_pending(p(i))).collect();
    if pending.is_empty() {
        return false;
    }
    let i = pending[rng.below(pending.len() as u64) as usize];
    sys.step(p(i)).unwrap();
    true
}

/// Random walks over the consensus protocol: at every
/// permutation-safe configuration reached, the canonical digest must
/// agree with the digest of every permuted image. Mid-collect
/// configurations are exempt (the sorted form is gated off there — see
/// `slx_consensus::permutation_safe`); the walk must still encounter
/// plenty of safe ones for the test to mean anything.
#[test]
fn consensus_canonical_digest_is_permutation_invariant_at_safe_states() {
    let mut rng = Rng(0x0f_5ee_d00);
    let mut safe_states = 0usize;
    for _case in 0..200 {
        let n = 2 + rng.below(2) as usize; // 2 or 3 processes
        let inputs: Vec<i64> = (0..n).map(|_| 1 + rng.below(2) as i64).collect();
        let mut sys = of_system(&inputs);
        let steps = rng.below(30) as usize;
        for _ in 0..steps {
            if !step_random(&mut sys, &mut rng, n) {
                break;
            }
        }
        if !permutation_safe(&sys) {
            continue;
        }
        safe_states += 1;
        let canonical = canonical_of_digest(&sys);
        for _ in 0..3 {
            let perm = rng.perm(n);
            let image = permuted_of_system(&sys, &perm);
            assert_eq!(
                canonical,
                canonical_of_digest(&image),
                "inputs {inputs:?}, {steps} steps, perm {perm:?}"
            );
        }
    }
    assert!(
        safe_states >= 80,
        "the walk must hit plenty of permutation-safe states \
         (got {safe_states}/200)"
    );
}

/// The adversarial non-converging lap schedule (see
/// `slx_consensus::normalize`): any two lap counts land on the same
/// canonical digest — the round shift is fully quotiented out.
#[test]
fn consensus_canonical_digest_is_round_shift_invariant_across_laps() {
    let mut rng = Rng(0xcafe_f00d);
    let digest_after = |laps: usize| {
        let mut sys = of_system(&[1, 2]);
        for _ in 0..laps {
            for i in [0, 1, 0, 1, 0, 0, 1, 1, 1, 1, 1, 0, 0, 0] {
                sys.step(p(i)).unwrap();
            }
        }
        canonical_of_digest(&sys)
    };
    for _case in 0..20 {
        let k1 = 1 + rng.below(5) as usize;
        let k2 = 1 + rng.below(5) as usize;
        assert_eq!(digest_after(k1), digest_after(k2), "laps {k1} vs {k2}");
    }
}

fn gv_system(n: usize, nvars: usize) -> System<TmWord, GlobalVersionTm> {
    let mut mem: Memory<TmWord> = Memory::new();
    let c = GlobalVersionTm::alloc(&mut mem, nvars);
    let procs = (0..n).map(|_| GlobalVersionTm::new(c, nvars)).collect();
    System::new(mem, procs)
}

fn random_tm_op(rng: &mut Rng, nvars: usize) -> Operation {
    let x = VarId::new(rng.below(nvars as u64) as usize);
    match rng.below(4) {
        0 => Operation::TxStart,
        1 => Operation::TxRead(x),
        2 => Operation::TxWrite(x, v(rng.below(3) as i64)),
        _ => Operation::TxCommit,
    }
}

/// Drive a random mix of TM operations: invoke on idle processes, step
/// pending ones.
fn random_tm_walk<P>(
    sys: &mut System<TmWord, P>,
    rng: &mut Rng,
    n: usize,
    nvars: usize,
    events: usize,
) where
    P: slx_memory::Process<TmWord>,
{
    for _ in 0..events {
        let i = rng.below(n as u64) as usize;
        if sys.is_pending(p(i)) {
            sys.step(p(i)).unwrap();
        } else {
            sys.invoke(p(i), random_tm_op(rng, nvars)).unwrap();
        }
    }
}

/// `GlobalVersionTm` has no per-process identity in shared memory, so
/// its canonical digest must be permutation-invariant at *every*
/// reachable configuration, including mid-transaction ones.
#[test]
fn global_version_canonical_digest_is_permutation_invariant() {
    let mut rng = Rng(0x7ea_c0de);
    for case in 0..150 {
        let n = 2 + rng.below(2) as usize;
        let nvars = 1 + rng.below(2) as usize;
        let mut sys = gv_system(n, nvars);
        let events = rng.below(40) as usize;
        random_tm_walk(&mut sys, &mut rng, n, nvars, events);
        let canonical = canonical_global_version_digest(&sys);
        for _ in 0..3 {
            let perm = rng.perm(n);
            let image = permuted_global_version(&sys, &perm);
            assert_eq!(
                canonical,
                canonical_global_version_digest(&image),
                "case {case}, n {n}, perm {perm:?}"
            );
        }
    }
}

/// Uniform commit laps shift the global version without changing
/// behaviour: from any quiesced random configuration, the canonical
/// digest is identical after `k ≥ 2` identical solo laps, for every `k`.
/// (Lap 1 still carries the random prefix in the transaction-local
/// `old_values` cache — dead after a commit but legitimately part of the
/// state; the second lap overwrites it with lap-content, after which
/// only the version counter climbs and the shift quotients it away.)
#[test]
fn global_version_canonical_digest_is_version_shift_invariant() {
    let mut rng = Rng(0x5197_0bad);
    for case in 0..50 {
        let n = 2 + rng.below(2) as usize;
        let mut seed = gv_system(n, 1);
        // A random *completed-transaction* prefix: laps must start from
        // idle processes so every lap runs the same code path.
        for _ in 0..rng.below(4) {
            let i = rng.below(n as u64) as usize;
            for op in [
                Operation::TxStart,
                Operation::TxWrite(VarId::new(0), v(rng.below(3) as i64)),
                Operation::TxCommit,
            ] {
                seed.invoke(p(i), op).unwrap();
                while seed.is_pending(p(i)) {
                    seed.step(p(i)).unwrap();
                }
            }
        }
        let lap = |sys: &mut System<TmWord, GlobalVersionTm>| {
            for i in 0..n {
                for op in [
                    Operation::TxStart,
                    Operation::TxWrite(VarId::new(0), v(9)),
                    Operation::TxCommit,
                ] {
                    sys.invoke(p(i), op).unwrap();
                    while sys.is_pending(p(i)) {
                        sys.step(p(i)).unwrap();
                    }
                }
            }
        };
        let mut sys = seed.clone();
        lap(&mut sys);
        lap(&mut sys);
        let saturated = canonical_global_version_digest(&sys);
        let mut raw = vec![sys.digest128()];
        for k in 3..=5usize {
            lap(&mut sys);
            assert_eq!(
                canonical_global_version_digest(&sys),
                saturated,
                "case {case}, lap {k}"
            );
            raw.push(sys.digest128());
        }
        raw.dedup();
        assert_eq!(raw.len(), 4, "case {case}: raw digests must keep climbing");
    }
}

fn agp_system(n: usize, nvars: usize) -> System<TmWord, AgpTm> {
    let mut mem: Memory<TmWord> = Memory::new();
    let (c, r) = AgpTm::alloc(&mut mem, n, nvars);
    let procs = (0..n).map(|i| AgpTm::new(c, r, p(i), n, nvars)).collect();
    System::new(mem, procs)
}

/// Algorithm I(1,2) keeps a per-process announce slot, but every shared
/// read of it is an order-insensitive aggregate (an atomic snapshot
/// reduced to a count), so the canonical digest must be
/// permutation-invariant at every reachable configuration.
#[test]
fn agp_canonical_digest_is_permutation_invariant() {
    let mut rng = Rng(0xa9b_1dea);
    for case in 0..150 {
        let n = 2 + rng.below(2) as usize;
        let nvars = 1 + rng.below(2) as usize;
        let mut sys = agp_system(n, nvars);
        let events = rng.below(40) as usize;
        random_tm_walk(&mut sys, &mut rng, n, nvars, events);
        let canonical = canonical_agp_digest(&sys);
        for _ in 0..3 {
            let perm = rng.perm(n);
            let image = permuted_agp(&sys, &perm);
            assert_eq!(
                canonical,
                canonical_agp_digest(&image),
                "case {case}, n {n}, perm {perm:?}"
            );
        }
    }
}
