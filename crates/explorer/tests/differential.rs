//! Differential tests of the `slx-engine` kernel backends.
//!
//! The parallel BFS and sequential DFS backends must report identical
//! `holds()` verdicts and visited-configuration counts on the workspace's
//! seed scenarios (register consensus and transactional memory), and both
//! must reproduce the retained-clone baseline implementation exactly.
//! Since the sharded-visited-set refactor the BFS pins extend to a full
//! determinism matrix: every {thread count} × {shard count} combination
//! must report the same verdicts and counts.

use slx_consensus::{CasConsensus, ConsWord, ObstructionFreeConsensus};
use slx_engine::Checker;
use slx_explorer::baseline::{decidable_values_retained, explore_safety_retained};
use slx_explorer::{decidable_values_with, explore_safety_with, history_digest};
use slx_history::{Operation, ProcessId, Value, VarId};
use slx_memory::{Memory, System};
use slx_safety::{ConsensusSafety, Opacity};
use slx_tm::{GlobalVersionTm, TmWord};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn v(x: i64) -> Value {
    Value::new(x)
}

fn cas_consensus_scenario() -> System<ConsWord, CasConsensus> {
    let mut mem: Memory<ConsWord> = Memory::new();
    let obj = CasConsensus::alloc(&mut mem);
    let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
    sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
    sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
    sys
}

fn of_consensus_scenario() -> System<ConsWord, ObstructionFreeConsensus> {
    let mut mem: Memory<ConsWord> = Memory::new();
    let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 16);
    let procs = vec![
        ObstructionFreeConsensus::new(layout.clone(), p(0), 2),
        ObstructionFreeConsensus::new(layout, p(1), 2),
    ];
    let mut sys = System::new(mem, procs);
    sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
    sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
    sys
}

/// Runs one operation on `proc` to completion (solo), so TM scenarios can
/// be driven to an interesting mid-transaction configuration.
fn complete_op(sys: &mut System<TmWord, GlobalVersionTm>, proc: ProcessId, op: Operation) {
    sys.invoke(proc, op).unwrap();
    for _ in 0..100 {
        if !sys.is_pending(proc) {
            return;
        }
        sys.step(proc).unwrap();
    }
    panic!("operation did not complete within 100 solo steps");
}

/// Two global-version TM transactions, both having read and written `x`
/// and both with a pending `tryC`: exploring the commit interleavings is
/// the TM seed scenario.
fn tm_scenario() -> System<TmWord, GlobalVersionTm> {
    let mut mem: Memory<TmWord> = Memory::new();
    let c = GlobalVersionTm::alloc(&mut mem, 1);
    let procs = vec![GlobalVersionTm::new(c, 1), GlobalVersionTm::new(c, 1)];
    let mut sys = System::new(mem, procs);
    let x = VarId::new(0);
    for i in 0..2 {
        complete_op(&mut sys, p(i), Operation::TxStart);
        complete_op(&mut sys, p(i), Operation::TxRead(x));
        complete_op(&mut sys, p(i), Operation::TxWrite(x, v(i as i64 + 1)));
    }
    sys.invoke(p(0), Operation::TxCommit).unwrap();
    sys.invoke(p(1), Operation::TxCommit).unwrap();
    sys
}

/// The tentpole determinism pin of the sharded-visited-set refactor: on
/// both seed scenarios (register consensus and the TM commit race), every
/// combination of {1, 2, 4, 8} worker threads × {1, 4, 16} visited-set
/// shards must produce the *same verdict and the same visited-config
/// count* as the single-thread single-shard run — and so must the
/// sequential DFS backend. Exploration results depend on the model, never
/// on the machine.
#[test]
fn verdicts_and_counts_are_thread_and_shard_count_independent() {
    let consensus = of_consensus_scenario();
    let tm = tm_scenario();
    let active = [p(0), p(1)];
    let consensus_safety = ConsensusSafety::new();
    let tm_safety = Opacity::new(v(0));

    let consensus_base = explore_safety_with(
        &Checker::parallel_bfs(1).with_shards(1),
        &consensus,
        &active,
        14,
        &consensus_safety,
        history_digest,
    );
    let tm_base = explore_safety_with(
        &Checker::parallel_bfs(1).with_shards(1),
        &tm,
        &active,
        20,
        &tm_safety,
        history_digest,
    );
    assert!(consensus_base.holds());
    assert!(tm_base.holds());
    assert!(consensus_base.configs > 100, "scenario must branch");

    for threads in [1usize, 2, 4, 8] {
        for shards in [1usize, 4, 16] {
            let checker = Checker::parallel_bfs(threads).with_shards(shards);
            let label = format!("{threads} threads, {shards} shards");

            let c = explore_safety_with(
                &checker,
                &consensus,
                &active,
                14,
                &consensus_safety,
                history_digest,
            );
            assert_eq!(c.holds(), consensus_base.holds(), "consensus, {label}");
            assert_eq!(c.configs, consensus_base.configs, "consensus, {label}");
            assert_eq!(c.truncated, consensus_base.truncated, "consensus, {label}");
            assert_eq!(
                c.stats.dedup_hits, consensus_base.stats.dedup_hits,
                "consensus, {label}"
            );
            assert_eq!(c.stats.shards, shards, "consensus, {label}");
            assert_eq!(
                c.stats.shard_occupancy.iter().sum::<usize>(),
                consensus_base.stats.shard_occupancy.iter().sum::<usize>(),
                "consensus, {label}"
            );

            let t = explore_safety_with(&checker, &tm, &active, 20, &tm_safety, history_digest);
            assert_eq!(t.holds(), tm_base.holds(), "tm, {label}");
            assert_eq!(t.configs, tm_base.configs, "tm, {label}");
            assert_eq!(t.truncated, tm_base.truncated, "tm, {label}");
        }
    }

    // The DFS backend closes the matrix: same verdicts and counts again.
    let c_dfs = explore_safety_with(
        &Checker::sequential_dfs(),
        &consensus,
        &active,
        14,
        &consensus_safety,
        history_digest,
    );
    assert_eq!(c_dfs.holds(), consensus_base.holds());
    assert_eq!(c_dfs.configs, consensus_base.configs);
    let t_dfs = explore_safety_with(
        &Checker::sequential_dfs(),
        &tm,
        &active,
        20,
        &tm_safety,
        history_digest,
    );
    assert_eq!(t_dfs.holds(), tm_base.holds());
    assert_eq!(t_dfs.configs, tm_base.configs);
}

/// The disk-backed-frontier determinism pin: on both seed scenarios,
/// spill-enabled runs (a memory budget tiny enough to spill several
/// chunks per level) must produce byte-identical verdicts, visited-config
/// counts, truncation flags, and dedup accounting to fully-resident runs,
/// across {1, 4} worker threads × {1, 16} visited-set shards. The
/// no-spill arms pin the budget to 0 so the matrix stays meaningful even
/// under a `SLX_ENGINE_MEM_BUDGET` environment (the spill CI job).
#[test]
fn spill_and_in_memory_runs_are_byte_identical() {
    let consensus = of_consensus_scenario();
    let tm = tm_scenario();
    let active = [p(0), p(1)];
    let consensus_safety = ConsensusSafety::new();
    let tm_safety = Opacity::new(v(0));

    let consensus_base = explore_safety_with(
        &Checker::parallel_bfs(1).with_shards(1).with_mem_budget(0),
        &consensus,
        &active,
        14,
        &consensus_safety,
        history_digest,
    );
    let tm_base = explore_safety_with(
        &Checker::parallel_bfs(1).with_shards(1).with_mem_budget(0),
        &tm,
        &active,
        20,
        &tm_safety,
        history_digest,
    );
    assert_eq!(consensus_base.stats.spilled_chunks, 0);
    assert!(consensus_base.configs > 100, "scenario must branch");

    // A quarter KiB (128-byte chunks): a self-contained mid-exploration
    // `System` record is one-to-several hundred bytes and a
    // delta-encoded sibling a few dozen, so every level past the first
    // few spills at least two chunks — including the narrow TM
    // commit-race levels, whose records the delta codec shrinks the
    // most.
    const TINY_BUDGET: usize = 256;
    for threads in [1usize, 4] {
        for shards in [1usize, 16] {
            for mem_budget in [0usize, TINY_BUDGET] {
                let checker = Checker::parallel_bfs(threads)
                    .with_shards(shards)
                    .with_mem_budget(mem_budget);
                let label = format!("{threads} threads, {shards} shards, mem {mem_budget}");

                let c = explore_safety_with(
                    &checker,
                    &consensus,
                    &active,
                    14,
                    &consensus_safety,
                    history_digest,
                );
                assert_eq!(c.holds(), consensus_base.holds(), "consensus, {label}");
                assert_eq!(c.configs, consensus_base.configs, "consensus, {label}");
                assert_eq!(c.truncated, consensus_base.truncated, "consensus, {label}");
                assert_eq!(
                    c.violations, consensus_base.violations,
                    "consensus, {label}"
                );
                assert_eq!(
                    c.stats.transitions, consensus_base.stats.transitions,
                    "consensus, {label}"
                );
                assert_eq!(
                    c.stats.dedup_hits, consensus_base.stats.dedup_hits,
                    "consensus, {label}"
                );
                assert_eq!(
                    c.stats.peak_frontier, consensus_base.stats.peak_frontier,
                    "consensus, {label}"
                );
                assert_eq!(
                    c.stats.shard_occupancy.iter().sum::<usize>(),
                    consensus_base.stats.shard_occupancy.iter().sum::<usize>(),
                    "consensus, {label}"
                );

                let t = explore_safety_with(&checker, &tm, &active, 20, &tm_safety, history_digest);
                assert_eq!(t.holds(), tm_base.holds(), "tm, {label}");
                assert_eq!(t.configs, tm_base.configs, "tm, {label}");
                assert_eq!(t.truncated, tm_base.truncated, "tm, {label}");
                assert_eq!(t.stats.dedup_hits, tm_base.stats.dedup_hits, "tm, {label}");

                if mem_budget == 0 {
                    assert_eq!(c.stats.spilled_chunks, 0, "consensus, {label}");
                    assert_eq!(t.stats.spilled_chunks, 0, "tm, {label}");
                } else {
                    assert!(
                        c.stats.spilled_chunks >= 2,
                        "consensus, {label}: the tiny budget must spill \
                         (got {} chunks)",
                        c.stats.spilled_chunks
                    );
                    assert!(c.stats.spilled_bytes > 0, "consensus, {label}");
                    assert!(
                        c.stats.peak_resident_states < c.stats.peak_frontier,
                        "consensus, {label}: resident window {} must stay below \
                         the widest level {}",
                        c.stats.peak_resident_states,
                        c.stats.peak_frontier
                    );
                    assert!(t.stats.spilled_chunks >= 2, "tm, {label}");
                }
            }
        }
    }
}

/// The four-way spill-codec pin: replay ≡ delta ≡ plain ≡ resident. On
/// both seed scenarios (register consensus and the TM commit race), all
/// three chunk record encodings — delta (the default), plain
/// self-contained records, and replay recompute-from-parent records —
/// must produce verdicts, visited-config counts, findings, truncation,
/// and dedup accounting identical to the fully-resident run, across the
/// 256-byte budget matrix of {1, 4} worker threads. Replay must actually
/// regenerate (its whole point), the other codecs must never, and the
/// spill-volume ordering (replay < delta < plain) must hold on the
/// sibling-heavy consensus levels.
#[test]
fn replay_delta_plain_and_resident_runs_agree() {
    use slx_engine::SpillCodec;
    let consensus = of_consensus_scenario();
    let tm = tm_scenario();
    let active = [p(0), p(1)];
    let consensus_safety = ConsensusSafety::new();
    let tm_safety = Opacity::new(v(0));
    let consensus_base = explore_safety_with(
        &Checker::parallel_bfs(1).with_shards(1).with_mem_budget(0),
        &consensus,
        &active,
        14,
        &consensus_safety,
        history_digest,
    );
    let tm_base = explore_safety_with(
        &Checker::parallel_bfs(1).with_shards(1).with_mem_budget(0),
        &tm,
        &active,
        20,
        &tm_safety,
        history_digest,
    );
    assert_eq!(consensus_base.stats.replayed_parents, 0);

    const TINY_BUDGET: usize = 256;
    let mut consensus_bytes = std::collections::HashMap::new();
    for codec in [SpillCodec::Replay, SpillCodec::Delta, SpillCodec::Plain] {
        for threads in [1usize, 4] {
            let checker = Checker::parallel_bfs(threads)
                .with_shards(1)
                .with_mem_budget(TINY_BUDGET)
                .with_spill_codec(codec);
            let label = format!("{codec:?}, {threads} threads");

            let c = explore_safety_with(
                &checker,
                &consensus,
                &active,
                14,
                &consensus_safety,
                history_digest,
            );
            assert_eq!(c.holds(), consensus_base.holds(), "consensus, {label}");
            assert_eq!(c.configs, consensus_base.configs, "consensus, {label}");
            assert_eq!(
                c.violations, consensus_base.violations,
                "consensus, {label}"
            );
            assert_eq!(c.truncated, consensus_base.truncated, "consensus, {label}");
            assert_eq!(
                c.stats.transitions, consensus_base.stats.transitions,
                "consensus, {label}"
            );
            assert_eq!(
                c.stats.dedup_hits, consensus_base.stats.dedup_hits,
                "consensus, {label}"
            );
            assert_eq!(
                c.stats.peak_frontier, consensus_base.stats.peak_frontier,
                "consensus, {label}"
            );
            assert!(c.stats.spilled_chunks >= 2, "{label} must spill");

            let t = explore_safety_with(&checker, &tm, &active, 20, &tm_safety, history_digest);
            assert_eq!(t.holds(), tm_base.holds(), "tm, {label}");
            assert_eq!(t.configs, tm_base.configs, "tm, {label}");
            assert_eq!(t.truncated, tm_base.truncated, "tm, {label}");
            assert_eq!(t.stats.dedup_hits, tm_base.stats.dedup_hits, "tm, {label}");
            assert!(t.stats.spilled_chunks >= 2, "tm, {label} must spill");

            for (got, scenario) in [(&c, "consensus"), (&t, "tm")] {
                if codec == SpillCodec::Replay {
                    assert!(
                        got.stats.replayed_parents > 0,
                        "{scenario}, {label}: replay chunks must regenerate from parents"
                    );
                    assert!(
                        got.stats.replayed_parents <= got.configs,
                        "{scenario}, {label}: at most one re-expansion per parent \
                         per level ({} > {})",
                        got.stats.replayed_parents,
                        got.configs
                    );
                } else {
                    assert_eq!(got.stats.replayed_parents, 0, "{scenario}, {label}");
                }
            }
        }
        // The spill-volume comparison needs chunks that actually hold
        // several records: at the 256-byte matrix budget every ~230-byte
        // consensus record is its own (self-contained) chunk, where delta
        // degenerates to plain by design. 512-byte chunks restore the
        // sibling chains while still forcing every arm (including the
        // nearly-free replay records) to spill repeatedly.
        let roomy = explore_safety_with(
            &Checker::parallel_bfs(1)
                .with_shards(1)
                .with_mem_budget(1024)
                .with_spill_codec(codec),
            &consensus,
            &active,
            14,
            &consensus_safety,
            history_digest,
        );
        assert_eq!(roomy.configs, consensus_base.configs, "{codec:?}, roomy");
        assert_eq!(roomy.holds(), consensus_base.holds(), "{codec:?}, roomy");
        assert!(roomy.stats.spilled_chunks >= 2, "{codec:?}, roomy");
        consensus_bytes.insert(codec_name(codec), roomy.stats.spilled_bytes);
    }
    let (replay, delta, plain) = (
        consensus_bytes["replay"],
        consensus_bytes["delta"],
        consensus_bytes["plain"],
    );
    assert!(
        delta < plain / 2,
        "delta chunks ({delta} bytes) must substantially undercut plain chunks \
         ({plain} bytes) on sibling-heavy consensus levels"
    );
    assert!(
        replay < delta,
        "replay chunks ({replay} bytes) store only parents + indices and must \
         undercut even delta chunks ({delta} bytes)"
    );
}

fn codec_name(codec: slx_engine::SpillCodec) -> &'static str {
    match codec {
        slx_engine::SpillCodec::Delta => "delta",
        slx_engine::SpillCodec::Plain => "plain",
        slx_engine::SpillCodec::Replay => "replay",
    }
}

/// The same pin on the *budgeted* valence query: `max_states` truncation
/// must cut the same frontier prefix whether the tail is resident or
/// spilled, at budgets that land mid-level.
#[test]
fn spilled_valence_truncation_matches_resident() {
    let cas = cas_consensus_scenario();
    let of = of_consensus_scenario();
    let active = [p(0), p(1)];
    for budget in [3usize, 17, 50, 400, 10_000] {
        let base_cas = decidable_values_with(
            &Checker::parallel_bfs(1).with_shards(1).with_mem_budget(0),
            &cas,
            &active,
            budget,
        );
        let base_of = decidable_values_with(
            &Checker::parallel_bfs(1).with_shards(1).with_mem_budget(0),
            &of,
            &active,
            budget,
        );
        for threads in [1usize, 4] {
            for codec in [
                slx_engine::SpillCodec::Delta,
                slx_engine::SpillCodec::Replay,
            ] {
                let spilling = Checker::parallel_bfs(threads)
                    .with_shards(16)
                    .with_mem_budget(2048)
                    .with_spill_codec(codec);
                let got_cas = decidable_values_with(&spilling, &cas, &active, budget);
                let got_of = decidable_values_with(&spilling, &of, &active, budget);
                for (got, base, name) in [(&got_cas, &base_cas, "cas"), (&got_of, &base_of, "of")] {
                    let label = format!("{name}, budget {budget}, {threads} threads, {codec:?}");
                    assert_eq!(got.values, base.values, "{label}");
                    assert_eq!(got.bivalent(), base.bivalent(), "{label}");
                    assert_eq!(got.truncated, base.truncated, "{label}");
                    assert_eq!(got.configs, base.configs, "{label}");
                }
            }
        }
    }
}

/// The same matrix on the budgeted valence query (the bivalence
/// adversary's inner loop): values, bivalence, truncation, and configs
/// must not depend on threads or shards, including at budgets that cut
/// the exploration mid-level.
#[test]
fn valence_verdicts_are_thread_and_shard_count_independent() {
    let cas = cas_consensus_scenario();
    let active = [p(0), p(1)];
    for budget in [3usize, 50, 10_000] {
        let base = decidable_values_with(
            &Checker::parallel_bfs(1).with_shards(1),
            &cas,
            &active,
            budget,
        );
        for threads in [2usize, 4, 8] {
            for shards in [4usize, 16] {
                let got = decidable_values_with(
                    &Checker::parallel_bfs(threads).with_shards(shards),
                    &cas,
                    &active,
                    budget,
                );
                let label = format!("budget {budget}, {threads} threads, {shards} shards");
                assert_eq!(got.values, base.values, "{label}");
                assert_eq!(got.bivalent(), base.bivalent(), "{label}");
                assert_eq!(got.truncated, base.truncated, "{label}");
                assert_eq!(got.configs, base.configs, "{label}");
            }
        }
    }
}

#[test]
fn backends_agree_on_cas_consensus() {
    let sys = cas_consensus_scenario();
    let active = [p(0), p(1)];
    let safety = ConsensusSafety::new();
    let bfs = explore_safety_with(
        &Checker::parallel_bfs(2),
        &sys,
        &active,
        16,
        &safety,
        history_digest,
    );
    let dfs = explore_safety_with(
        &Checker::sequential_dfs(),
        &sys,
        &active,
        16,
        &safety,
        history_digest,
    );
    assert_eq!(bfs.holds(), dfs.holds());
    assert_eq!(bfs.configs, dfs.configs);
    assert!(bfs.holds());
}

#[test]
fn backends_agree_on_of_consensus() {
    let sys = of_consensus_scenario();
    let active = [p(0), p(1)];
    let safety = ConsensusSafety::new();
    for depth in [8usize, 14, 20] {
        let bfs = explore_safety_with(
            &Checker::parallel_bfs(2),
            &sys,
            &active,
            depth,
            &safety,
            history_digest,
        );
        let dfs = explore_safety_with(
            &Checker::sequential_dfs(),
            &sys,
            &active,
            depth,
            &safety,
            history_digest,
        );
        assert_eq!(bfs.holds(), dfs.holds(), "depth {depth}");
        assert_eq!(bfs.configs, dfs.configs, "depth {depth}");
        assert!(bfs.holds(), "depth {depth}");
    }
}

#[test]
fn backends_agree_on_tm_commit_race() {
    let sys = tm_scenario();
    let active = [p(0), p(1)];
    let safety = Opacity::new(v(0));
    let bfs = explore_safety_with(
        &Checker::parallel_bfs(2),
        &sys,
        &active,
        20,
        &safety,
        history_digest,
    );
    let dfs = explore_safety_with(
        &Checker::sequential_dfs(),
        &sys,
        &active,
        20,
        &safety,
        history_digest,
    );
    assert_eq!(bfs.holds(), dfs.holds());
    assert_eq!(bfs.configs, dfs.configs);
    assert!(bfs.holds(), "global-version TM commits must stay opaque");
    assert!(bfs.configs > 1, "the commit race must branch");
}

#[test]
fn kernel_matches_retained_baseline_on_consensus() {
    let sys = of_consensus_scenario();
    let active = [p(0), p(1)];
    let safety = ConsensusSafety::new();
    // The retained baseline has no symmetry reduction: pin it off on the
    // kernel arm so the count comparison survives `SLX_ENGINE_SYMMETRY=1`
    // environments (the symmetry CI job).
    let checker = Checker::auto().with_symmetry(false);
    for depth in [8usize, 14, 18] {
        let engine = explore_safety_with(&checker, &sys, &active, depth, &safety, history_digest);
        let baseline = explore_safety_retained(&sys, &active, depth, &safety, history_digest);
        assert_eq!(engine.holds(), baseline.holds(), "depth {depth}");
        assert_eq!(engine.configs, baseline.configs, "depth {depth}");
        assert_eq!(engine.truncated, baseline.truncated, "depth {depth}");
    }
}

#[test]
fn kernel_matches_retained_baseline_on_tm() {
    let sys = tm_scenario();
    let active = [p(0), p(1)];
    let safety = Opacity::new(v(0));
    // See the consensus twin: symmetry pinned off against the unreduced
    // retained baseline.
    let checker = Checker::auto().with_symmetry(false);
    let engine = explore_safety_with(&checker, &sys, &active, 20, &safety, history_digest);
    let baseline = explore_safety_retained(&sys, &active, 20, &safety, history_digest);
    assert_eq!(engine.holds(), baseline.holds());
    assert_eq!(engine.configs, baseline.configs);
}

#[test]
fn valence_matches_retained_baseline_across_budgets() {
    // Sweep the budget through starved, boundary, and ample regimes on
    // both seed scenarios; the engine must reproduce the retained
    // implementation's verdict (values, bivalence, truncation) at every
    // point. `configs` is only comparable when neither run truncates: at
    // the budget the seed counted one state it never expanded.
    let active = [p(0), p(1)];
    let cas = cas_consensus_scenario();
    let of = of_consensus_scenario();
    // Symmetry pinned off against the unreduced retained baseline (the
    // truncation boundary is count-sensitive).
    let checker = Checker::auto().with_symmetry(false);
    for budget in [1usize, 2, 3, 5, 10, 50, 200, 1000, 10_000] {
        let engine_cas = decidable_values_with(&checker, &cas, &active, budget);
        let seed_cas = decidable_values_retained(&cas, &active, budget);
        let engine_of = decidable_values_with(&checker, &of, &active, budget);
        let seed_of = decidable_values_retained(&of, &active, budget);
        for (engine, seed, name) in [
            (&engine_cas, &seed_cas, "cas"),
            (&engine_of, &seed_of, "of"),
        ] {
            assert_eq!(engine.values, seed.values, "{name} budget {budget}");
            assert_eq!(engine.bivalent(), seed.bivalent(), "{name} budget {budget}");
            if !engine.bivalent() {
                // Early bivalence exits can race the budget boundary;
                // everywhere else truncation must agree exactly.
                assert_eq!(engine.truncated, seed.truncated, "{name} budget {budget}");
            }
            if !engine.truncated && !seed.truncated {
                assert_eq!(engine.configs, seed.configs, "{name} budget {budget}");
            }
        }
    }
}

#[test]
fn backends_agree_on_injected_violation() {
    // A scenario whose verdict is *false*: both backends must find it.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Selfish {
        pending: Option<Value>,
    }
    impl slx_memory::Process<ConsWord> for Selfish {
        fn on_invoke(&mut self, op: Operation) {
            if let Operation::Propose(v) = op {
                self.pending = Some(v);
            }
        }
        fn has_step(&self) -> bool {
            self.pending.is_some()
        }
        fn step(&mut self, _mem: &mut Memory<ConsWord>) -> slx_memory::StepEffect {
            let v = self.pending.take().expect("pending");
            slx_memory::StepEffect::Responded(slx_history::Response::Decided(v))
        }
    }
    impl slx_engine::StateCodec for Selfish {
        fn encode(&self, out: &mut Vec<u8>) {
            self.pending.encode(out);
        }
        fn decode(input: &mut &[u8]) -> Option<Self> {
            Some(Selfish {
                pending: Option::decode(input)?,
            })
        }
    }
    impl slx_engine::DeltaCodec for Selfish {}
    let mem: Memory<ConsWord> = Memory::new();
    let mut sys = System::new(
        mem,
        vec![Selfish { pending: None }, Selfish { pending: None }],
    );
    sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
    sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
    let active = [p(0), p(1)];
    let safety = ConsensusSafety::new();
    let bfs = explore_safety_with(
        &Checker::parallel_bfs(2),
        &sys,
        &active,
        4,
        &safety,
        history_digest,
    );
    let dfs = explore_safety_with(
        &Checker::sequential_dfs(),
        &sys,
        &active,
        4,
        &safety,
        history_digest,
    );
    assert!(!bfs.holds());
    assert!(!dfs.holds());
    assert_eq!(bfs.configs, dfs.configs);
}
