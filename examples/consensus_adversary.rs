//! Corollary 4.5 and Figure 1a's black points, live.
//!
//! 1. Builds the paper's explicit adversary sets `F1`, `F2` and shows
//!    `F1 ∩ F2 = ∅` (so, by Theorem 4.4, no weakest liveness property
//!    excludes consensus safety).
//! 2. Unleashes the valence-computing (Chor–Israeli–Li) adversary on the
//!    register-only obstruction-free consensus: two processes step forever,
//!    nobody decides — the (1,2)-freedom exclusion of Theorem 5.2.
//! 3. Shows the same adversary is powerless against CAS-based consensus.
//!
//! Run with: `cargo run --release --example consensus_adversary`

use safety_liveness_exclusion::adversary::run_bivalence_adversary;
use safety_liveness_exclusion::consensus::{CasConsensus, ConsWord, ObstructionFreeConsensus};
use safety_liveness_exclusion::history::{Operation, ProcessId, Value};
use safety_liveness_exclusion::memory::{Memory, System};
use safety_liveness_exclusion::safety::{ConsensusSafety, SafetyProperty};
use safety_liveness_exclusion::theorems::consensus_gmax_demo;

fn main() {
    let p1 = ProcessId::new(0);
    let p2 = ProcessId::new(1);

    // ------------------------------------------------------------------
    // 1. The explicit adversary sets of Section 4.1.
    // ------------------------------------------------------------------
    let demo = consensus_gmax_demo();
    println!("=== {} ===", demo.corollary);
    println!("F1 ({} histories):\n{}", demo.f1.len(), demo.f1);
    println!("F2 ({} histories):\n{}", demo.f2.len(), demo.f2);
    println!("F1 ∩ F2 = {}", demo.gmax);
    println!(
        "Gmax empty ⇒ corollary established: {}\n",
        demo.establishes_corollary()
    );

    // ------------------------------------------------------------------
    // 2. The constructive adversary vs register-only consensus.
    // ------------------------------------------------------------------
    println!("=== bivalence adversary vs obstruction-free consensus (registers) ===");
    let mut mem: Memory<ConsWord> = Memory::new();
    let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 128);
    let procs = vec![
        ObstructionFreeConsensus::new(layout.clone(), p1, 2),
        ObstructionFreeConsensus::new(layout, p2, 2),
    ];
    let mut sys = System::new(mem, procs);
    sys.invoke(p1, Operation::Propose(Value::new(1))).unwrap();
    sys.invoke(p2, Operation::Propose(Value::new(2))).unwrap();
    let report = run_bivalence_adversary(&mut sys, &[p1, p2], 200, 60_000);
    println!("scheduled steps      : {}", report.steps);
    println!("per-process steps    : {:?}", report.step_counts);
    println!("anyone decided?      : {}", report.decided);
    println!("bivalent throughout? : {}", report.bivalent_throughout);
    println!("adversary won?       : {}", report.adversary_won());
    println!(
        "history stays safe   : {}",
        ConsensusSafety::new().allows(&report.history)
    );
    println!(
        "⇒ two processes take infinitely many steps, neither decides:\n  \
         (1,2)-freedom excludes agreement & validity (Theorem 5.2, black points).\n"
    );

    // ------------------------------------------------------------------
    // 3. Contrast: the adversary loses against CAS-based consensus.
    // ------------------------------------------------------------------
    println!("=== same adversary vs CAS consensus ===");
    let mut mem: Memory<ConsWord> = Memory::new();
    let obj = CasConsensus::alloc(&mut mem);
    let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
    sys.invoke(p1, Operation::Propose(Value::new(1))).unwrap();
    sys.invoke(p2, Operation::Propose(Value::new(2))).unwrap();
    let report = run_bivalence_adversary(&mut sys, &[p1, p2], 200, 60_000);
    println!("adversary won?       : {}", report.adversary_won());
    println!(
        "⇒ with compare-and-swap base objects there is no bivalence to preserve:\n  \
         the exclusion is about *register* implementations, as Figure 1a states."
    );
}
