//! A tour of the formal side: I/O automata, composition, fairness,
//! Theorem 4.9's constructions, and Lemma 4.8 checked by brute force.
//!
//! Run with: `cargo run --example automata_tour`

use safety_liveness_exclusion::automata::{
    lemma_4_8_holds, single_response_ib, trivial_it, Automaton, BoundedLiveness, StateId,
};
use safety_liveness_exclusion::history::{Action, History, Operation, ProcessId, Response, Value};
use safety_liveness_exclusion::safety::{ConsensusSafety, SafetyProperty};

fn main() {
    let p1 = ProcessId::new(0);
    let p2 = ProcessId::new(1);
    let propose = |v: i64| Operation::Propose(Value::new(v));
    let ops = [propose(1), propose(2)];
    let resps = [
        Response::Decided(Value::new(1)),
        Response::Decided(Value::new(2)),
    ];

    // ------------------------------------------------------------------
    // 1. Composition: matched input/output actions become internal.
    // ------------------------------------------------------------------
    println!("=== composition (Section 2) ===");
    let mut chan: Automaton<&str> = Automaton::new(
        "chan",
        3,
        [StateId(0)],
        ["send"],
        ["deliver"],
        Vec::<&str>::new(),
    );
    chan.add_transition(StateId(0), "send", StateId(1));
    chan.add_transition(StateId(1), "deliver", StateId(2));
    chan.add_transition(StateId(1), "send", StateId(1));
    chan.add_transition(StateId(2), "send", StateId(2));
    let mut cons: Automaton<&str> = Automaton::new(
        "cons",
        2,
        [StateId(0)],
        ["deliver"],
        ["ack"],
        Vec::<&str>::new(),
    );
    cons.add_transition(StateId(0), "deliver", StateId(1));
    cons.add_transition(StateId(1), "ack", StateId(1));
    let composed = chan.compose(&cons);
    println!("composed automaton   : {}", composed.name());
    println!("inputs               : {:?}", composed.inputs());
    println!("outputs              : {:?}", composed.outputs());
    println!("internal (hidden)    : {:?}\n", composed.internals());

    // ------------------------------------------------------------------
    // 2. Theorem 4.9's trivial implementation It.
    // ------------------------------------------------------------------
    println!("=== Theorem 4.9: It (never responds) ===");
    let it = trivial_it(2, &ops, &resps);
    let safety = ConsensusSafety::new();
    let histories = it.histories(4);
    println!("histories to depth 4 : {}", histories.len());
    let all_safe = histories
        .iter()
        .all(|h| safety.allows(&History::from_actions(h.iter().copied())));
    println!("all ensure safety    : {all_safe}");
    let fair = it.fair_histories(4);
    println!(
        "fair histories       : {} (every process pending or crashed in each)",
        fair.len()
    );
    let both_invoke = vec![
        Action::invoke(p1, propose(1)),
        Action::invoke(p2, propose(2)),
    ];
    println!(
        "fair example         : both invoke, nobody answers — {}\n",
        fair.contains(&both_invoke)
    );

    // ------------------------------------------------------------------
    // 3. Theorem 4.9's Ib: one response, then silence.
    // ------------------------------------------------------------------
    println!("=== Theorem 4.9: Ib (single response) ===");
    let res = Response::Decided(Value::new(1));
    let ib = single_response_ib(p1, p1, propose(1), res, &ops).compose(&single_response_ib(
        p2,
        p1,
        propose(1),
        res,
        &ops,
    ));
    let with_response = ib
        .histories(5)
        .into_iter()
        .filter(|h| h.iter().any(|a| matches!(a, Action::Respond { .. })))
        .count();
    println!("histories w/ response: {with_response} (all respond decided(1) to p1's propose(1))");
    let pending = vec![Action::invoke(p1, propose(1))];
    println!(
        "pending designated invocation counted fair?: {} (response enabled ⇒ unfair)\n",
        ib.fair_histories(3).contains(&pending)
    );

    // ------------------------------------------------------------------
    // 4. Lemma 4.8, brute-forced on a bounded universe.
    // ------------------------------------------------------------------
    println!("=== Lemma 4.8 on It (1 process, depth 2) ===");
    let small_it = trivial_it(1, &[propose(1)], &[res]);
    let universe: Vec<Vec<Action>> = small_it.histories(2).into_iter().collect();
    let lmax = BoundedLiveness::new(
        universe
            .iter()
            .filter(|h| {
                let hist = History::from_actions(h.iter().copied());
                !hist.pending(p1) && !hist.crashed(p1)
            })
            .cloned(),
    );
    let (holds, strongest) = lemma_4_8_holds(&small_it, &lmax, &universe, 2);
    println!("universe size        : {}", universe.len());
    println!("|Lmax| truncation    : {}", lmax.len());
    println!("|Lmax ∪ fair(A_It)|  : {}", strongest.len());
    println!(
        "Lemma 4.8 verified   : {holds} (checked against all 2^k candidate liveness properties)"
    );
}
