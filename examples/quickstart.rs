//! Quickstart: the framework in five minutes.
//!
//! Builds a history by hand, checks safety; runs a real implementation
//! under a controlled schedule, checks safety and liveness; shows the
//! Theorem 4.9 trivial implementation.
//!
//! Run with: `cargo run --example quickstart`

use safety_liveness_exclusion::consensus::{ConsWord, ObstructionFreeConsensus, TrivialNoResponse};
use safety_liveness_exclusion::history::{Action, History, Operation, ProcessId, Response, Value};
use safety_liveness_exclusion::liveness::{
    ExecutionView, KObstructionFreedom, LivenessProperty, ProgressKind,
};
use safety_liveness_exclusion::memory::{Memory, RoundRobin, SoloScheduler, System};
use safety_liveness_exclusion::safety::{ConsensusSafety, SafetyProperty};

fn main() {
    let p1 = ProcessId::new(0);
    let p2 = ProcessId::new(1);

    // ------------------------------------------------------------------
    // 1. Histories and safety properties are plain data.
    // ------------------------------------------------------------------
    let agree = History::from_actions([
        Action::invoke(p1, Operation::Propose(Value::new(7))),
        Action::invoke(p2, Operation::Propose(Value::new(9))),
        Action::respond(p1, Response::Decided(Value::new(9))),
        Action::respond(p2, Response::Decided(Value::new(9))),
    ]);
    let safety = ConsensusSafety::new();
    println!("history       : {agree}");
    println!("well-formed   : {}", agree.is_well_formed());
    println!("safe (A&V)    : {}\n", safety.allows(&agree));

    let disagree = History::from_actions([
        Action::invoke(p1, Operation::Propose(Value::new(7))),
        Action::invoke(p2, Operation::Propose(Value::new(9))),
        Action::respond(p1, Response::Decided(Value::new(7))),
        Action::respond(p2, Response::Decided(Value::new(9))),
    ]);
    println!("history       : {disagree}");
    match safety.check(&disagree) {
        Ok(()) => println!("safe (A&V)    : true\n"),
        Err(v) => println!("safe (A&V)    : false ({v})\n"),
    }

    // ------------------------------------------------------------------
    // 2. Implementations are step machines under scheduler control.
    // ------------------------------------------------------------------
    let mut mem: Memory<ConsWord> = Memory::new();
    let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 64);
    let procs = vec![
        ObstructionFreeConsensus::new(layout.clone(), p1, 2),
        ObstructionFreeConsensus::new(layout, p2, 2),
    ];
    let mut sys = System::new(mem, procs);
    sys.invoke(p1, Operation::Propose(Value::new(7))).unwrap();
    sys.invoke(p2, Operation::Propose(Value::new(9))).unwrap();

    // Run p1 alone first (obstruction-freedom: it must decide) ...
    sys.run(&mut SoloScheduler::new(p1), 10_000);
    // ... then let p2 catch up.
    sys.run(&mut RoundRobin::new(), 10_000);

    println!("register-only obstruction-free consensus run:");
    println!("history       : {}", sys.history());
    println!("safe (A&V)    : {}", safety.allows(sys.history()));

    // Liveness: evaluate 1-obstruction-freedom on the recorded execution.
    let view = ExecutionView::new(sys.events(), 2, 0, ProgressKind::AnyResponse);
    let of = KObstructionFreedom::new(1);
    println!("{}: {}\n", of.name(), of.satisfied(&view));

    // ------------------------------------------------------------------
    // 3. Theorem 4.9's trivial implementation: never responds, ensures
    //    every safety property, and its finite runs are fair.
    // ------------------------------------------------------------------
    let mem: Memory<ConsWord> = Memory::new();
    let mut trivial = System::new(mem, vec![TrivialNoResponse::new(); 2]);
    trivial
        .invoke(p1, Operation::Propose(Value::new(1)))
        .unwrap();
    trivial
        .invoke(p2, Operation::Propose(Value::new(2)))
        .unwrap();
    trivial.run(&mut RoundRobin::new(), 1000);
    println!("trivial implementation It:");
    println!("history       : {}", trivial.history());
    println!("safe (A&V)    : {}", safety.allows(trivial.history()));
    println!(
        "quiescent     : {} (finite fair execution)",
        trivial.quiescent()
    );
}
