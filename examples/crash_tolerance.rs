//! Crash tolerance and the non-blocking distinction.
//!
//! Section 2's model lets any number of processes crash; Section 5's
//! liveness menu is designed for *non-blocking* systems, where a crashed
//! process cannot strangle the others. This example injects crashes into
//! every implementation in the workspace and shows who keeps going:
//!
//! - register-only consensus: survivors decide after any crash pattern;
//! - lock-free TM: survivors commit after the others crash mid-transaction;
//! - lock-based TM: one crash inside the critical section starves everyone
//!   forever — the blocking behaviour (l,k)-freedom rules out.
//!
//! Run with: `cargo run --release --example crash_tolerance`

use safety_liveness_exclusion::blocking::blocking_demo;
use safety_liveness_exclusion::consensus::{ConsWord, ObstructionFreeConsensus};
use safety_liveness_exclusion::history::{Operation, ProcessId, Value};
use safety_liveness_exclusion::memory::{
    CrashPlan, FairRandom, Memory, RandomCrashes, RoundRobin, System,
};
use safety_liveness_exclusion::safety::{ConsensusSafety, SafetyProperty};

fn main() {
    let safety = ConsensusSafety::new();

    // ------------------------------------------------------------------
    // 1. Planned crash, mid commit-adopt round.
    // ------------------------------------------------------------------
    println!("=== planned crash inside a commit-adopt round ===");
    for crash_at in [1u64, 5, 9] {
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 64);
        let procs = (0..2)
            .map(|i| ObstructionFreeConsensus::new(layout.clone(), ProcessId::new(i), 2))
            .collect();
        let mut sys: System<ConsWord, ObstructionFreeConsensus> = System::new(mem, procs);
        sys.invoke(ProcessId::new(0), Operation::Propose(Value::new(1)))
            .unwrap();
        sys.invoke(ProcessId::new(1), Operation::Propose(Value::new(2)))
            .unwrap();
        let mut sched = CrashPlan::new(RoundRobin::new(), vec![(crash_at, ProcessId::new(0))]);
        sys.run(&mut sched, 50_000);
        println!(
            "crash p1 at event {crash_at:>2}: survivor decided = {}, safety = {}",
            !sys.history().pending(ProcessId::new(1)),
            safety.allows(sys.history())
        );
    }

    // ------------------------------------------------------------------
    // 2. Random crash storms.
    // ------------------------------------------------------------------
    println!("\n=== random crash storms (3 processes, up to 2 crashes) ===");
    let mut survived = 0;
    let runs = 20;
    for seed in 0..runs {
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 3, 64);
        let procs = (0..3)
            .map(|i| ObstructionFreeConsensus::new(layout.clone(), ProcessId::new(i), 3))
            .collect();
        let mut sys: System<ConsWord, ObstructionFreeConsensus> = System::new(mem, procs);
        for i in 0..3 {
            sys.invoke(ProcessId::new(i), Operation::Propose(Value::new(i as i64)))
                .unwrap();
        }
        let mut sched = RandomCrashes::new(FairRandom::new(seed), seed, 25, 1);
        sys.run(&mut sched, 50_000);
        let ok = safety.allows(sys.history())
            && (0..3).all(|i| {
                sys.is_crashed(ProcessId::new(i)) || !sys.history().pending(ProcessId::new(i))
            });
        if ok {
            survived += 1;
        }
    }
    println!("{survived}/{runs} storms: all survivors decided, safety never violated");

    // ------------------------------------------------------------------
    // 3. Blocking vs non-blocking TM under the same crash.
    // ------------------------------------------------------------------
    println!("\n=== TM: crash the \"lock holder\" ===");
    let demo = blocking_demo(2000);
    println!(
        "lock TM   : survivor commits = {:<4} opaque = {}  (1,1)-freedom violated = {}",
        demo.lock_tm_survivor_commits, demo.lock_tm_still_opaque, demo.lock_tm_violates_11
    );
    println!(
        "lock-free : survivor commits = {:<4} (1,n)-freedom holds = {}",
        demo.lock_free_survivor_commits, demo.lock_free_satisfies_1n
    );
    println!(
        "contrast established: {} — blocking is a liveness failure, never a safety one",
        demo.establishes_contrast()
    );
}
