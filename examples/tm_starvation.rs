//! Corollary 4.6 and Figure 1b's black points, live.
//!
//! Runs the Section 4.1 three-step adversary against the lock-free opaque
//! TM: the victim retries forever while the committer commits every round.
//! Then converts the run into a *lasso* — a machine-checked proof that the
//! starvation continues for an infinite execution — and shows the
//! role-swapped twin strategy producing a disjoint adversary set
//! (`Gmax = ∅`, Corollary 4.6).
//!
//! Run with: `cargo run --release --example tm_starvation`

use safety_liveness_exclusion::adversary::TmStarvation;
use safety_liveness_exclusion::explorer::run_until_cycle_keyed;
use safety_liveness_exclusion::history::{ProcessId, Response, Value, VarId};
use safety_liveness_exclusion::liveness::{
    ExecutionView, LivenessProperty, LkFreedom, Lmax, ProgressKind,
};
use safety_liveness_exclusion::memory::{Event, Memory, System};
use safety_liveness_exclusion::safety::certify_unique_writes;
use safety_liveness_exclusion::theorems::tm_gmax_demo;
use safety_liveness_exclusion::tm::normalize::normalized_global_version;
use safety_liveness_exclusion::tm::{GlobalVersionTm, TmWord};

fn gv_system() -> System<TmWord, GlobalVersionTm> {
    let mut mem: Memory<TmWord> = Memory::new();
    let c = GlobalVersionTm::alloc(&mut mem, 1);
    let procs = (0..2).map(|_| GlobalVersionTm::new(c, 1)).collect();
    System::new(mem, procs)
}

fn main() {
    let victim = ProcessId::new(0);
    let committer = ProcessId::new(1);

    // ------------------------------------------------------------------
    // 1. The three-step strategy starves the victim.
    // ------------------------------------------------------------------
    println!("=== §4.1 starvation strategy vs lock-free opaque TM ===");
    let mut sys = gv_system();
    let mut adv = TmStarvation::new(victim, committer, VarId::new(0));
    sys.run(&mut adv, 4000);
    println!("committer rounds (commits): {}", adv.rounds());
    println!("victim ever committed?    : {}", adv.lost());
    println!(
        "run certified opaque      : {}",
        certify_unique_writes(sys.history(), Value::new(0))
    );

    let view = ExecutionView::second_half(sys.events(), 2, ProgressKind::CommitOnly);
    for prop in [LkFreedom::new(1, 2), LkFreedom::new(2, 2)] {
        println!("{:<18}: {}", prop.name(), prop.satisfied(&view));
    }
    println!("local progress    : {}\n", Lmax::new().satisfied(&view));

    // ------------------------------------------------------------------
    // 2. The lasso: proof the starvation is eternal.
    // ------------------------------------------------------------------
    println!("=== lasso (cycle modulo version shift) ===");
    let mut sys = gv_system();
    let mut adv = TmStarvation::new(victim, committer, VarId::new(0));
    let witness = run_until_cycle_keyed(&mut sys, &mut adv, 5000, |sys, adv: &TmStarvation| {
        let dval = sys
            .memory()
            .iter_objects()
            .find_map(|(_, o)| match o {
                safety_liveness_exclusion::memory::BaseObject::Cas(TmWord::Versioned {
                    values,
                    ..
                }) => Some(values[0].raw()),
                _ => None,
            })
            .unwrap_or(0);
        (normalized_global_version(sys), adv.normalized_state(dval))
    })
    .expect("the starvation loop is periodic");
    println!("stem length  : {} events", witness.stem.len());
    println!("cycle length : {} events", witness.cycle.len());
    println!("cycle steppers: {:?}", witness.cycle_steppers());
    let victim_commit = witness
        .cycle
        .iter()
        .any(|e| matches!(e, Event::Responded(q, Response::Committed) if *q == victim));
    println!("victim commits inside cycle: {victim_commit}");
    println!(
        "⇒ stem·cycle^ω is an infinite fair execution with 2 steppers and no victim commit:\n  \
         (2,2)-freedom (and local progress) exclude opacity (Theorem 5.3, black points).\n"
    );

    // ------------------------------------------------------------------
    // 3. Role-swapped twin ⇒ disjoint adversary sets ⇒ Gmax = ∅.
    // ------------------------------------------------------------------
    let demo = tm_gmax_demo(800);
    println!("=== {} ===", demo.corollary);
    println!(
        "F1 sample: {} histories (each starts with start() by p1)",
        demo.f1.len()
    );
    println!(
        "F2 sample: {} histories (each starts with start() by p2)",
        demo.f2.len()
    );
    println!("F1 ∩ F2 empty: {}", demo.gmax.is_empty());
    println!("corollary established: {}", demo.establishes_corollary());
}
