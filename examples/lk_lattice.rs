//! Figure 1, regenerated.
//!
//! Classifies every (l,k)-freedom point for consensus-from-registers
//! (pane a) and TM opacity (pane b), each anchored in live experiments:
//! exhaustive small-scope checks for the white anchors, adversary runs for
//! the black anchors. Prints the two panes in the paper's layout plus the
//! strongest-implementable / weakest-excluded frontiers of Theorems 5.2
//! and 5.3.
//!
//! Run with: `cargo run --release --example lk_lattice`

use safety_liveness_exclusion::grid::{consensus_grid, tm_grid};

fn main() {
    let n = 4;

    println!("=== Figure 1(a) ===");
    let a = consensus_grid(n);
    println!("{a}\n");
    print_frontiers(&a);

    println!("\n=== Figure 1(b) ===");
    let b = tm_grid(n);
    println!("{b}\n");
    print_frontiers(&b);

    println!("\nLegend: ○ implementable with S, ● excludes S (black/white as in the paper).");
    println!("Anchor evidence:");
    for g in [&a, &b] {
        for p in &g.points {
            let basis = match &p.verdict {
                safety_liveness_exclusion::grid::Verdict::Implementable { basis } => basis,
                safety_liveness_exclusion::grid::Verdict::Excluded { basis } => basis,
            };
            // Print only the two anchors per pane to keep the output tight.
            if (p.lk.l() == 1 && p.lk.k() == 1) || (p.lk.l() == 2 && p.lk.k() == 2) {
                println!("  [{}] {} — {}", g.safety, p.lk, basis);
            }
        }
    }
}

fn print_frontiers(g: &safety_liveness_exclusion::grid::Grid) {
    let strongest: Vec<String> = g
        .strongest_implementable()
        .iter()
        .map(|p| p.lk.to_string())
        .collect();
    let weakest: Vec<String> = g
        .weakest_excluded()
        .iter()
        .map(|p| p.lk.to_string())
        .collect();
    println!("strongest implementable: {}", strongest.join(", "));
    println!("weakest excluded       : {}", weakest.join(", "));
}
