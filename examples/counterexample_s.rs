//! Section 5.3: the limits of (l,k)-freedom.
//!
//! Property `S` = opacity + the equal-timestamp forced-abort rule. The
//! experiment shows:
//!
//! - (1,3)-freedom excludes `S` (three synchronized processes abort
//!   forever against Algorithm I(1,2) — with a lasso proof);
//! - (2,2)-freedom excludes `S` (the §4.1 starvation strategy);
//! - (1,2)-freedom does **not** exclude `S` (Algorithm I(1,2) under any
//!   two-stepper schedule keeps committing, Lemma 5.4);
//! - (1,3) and (2,2) are incomparable and their common weakening (1,2) is
//!   implementable ⇒ **no weakest excluding (l,k)-freedom exists for S**.
//!
//! Run with: `cargo run --release --example counterexample_s`

use safety_liveness_exclusion::adversary::TripleRoundAdversary;
use safety_liveness_exclusion::counterexample::run_counterexample_s;
use safety_liveness_exclusion::explorer::run_until_cycle_keyed;
use safety_liveness_exclusion::history::{ProcessId, Value};
use safety_liveness_exclusion::liveness::LkFreedom;
use safety_liveness_exclusion::memory::{Memory, System};
use safety_liveness_exclusion::tm::normalize::normalized_agp;
use safety_liveness_exclusion::tm::{AgpTm, TmWord};

fn main() {
    println!("=== Section 5.3: property S vs (l,k)-freedom ===\n");
    let report = run_counterexample_s(4000);

    println!("(1,3)-freedom excluded:");
    println!("  synchronized all-abort rounds : {}", report.triple_rounds);
    println!("  any commit escaped?           : {}", report.triple_lost);

    println!("(2,2)-freedom excluded:");
    println!(
        "  starvation rounds             : {}",
        report.starvation_rounds
    );
    println!(
        "  victim ever committed?        : {}",
        report.starvation_lost
    );

    println!("(1,2)-freedom implementable (Algorithm I(1,2), Lemma 5.4):");
    println!("  commits by the two steppers   : {:?}", report.duo_commits);
    println!("  property S held throughout    : {}", report.s_holds);

    let a = LkFreedom::new(1, 3);
    let b = LkFreedom::new(2, 2);
    println!("\norder structure:");
    println!(
        "  (1,3) vs (2,2) comparable?    : {}",
        a.partial_cmp_strength(&b).is_some()
    );
    println!(
        "  both stronger than (1,2)?     : {}",
        a.is_stronger_or_equal(&LkFreedom::new(1, 2))
            && b.is_stronger_or_equal(&LkFreedom::new(1, 2))
    );
    println!(
        "\nSection 5.3 conclusion established: {}\n",
        report.establishes_section_5_3()
    );

    // Lasso proof for the (1,3) exclusion.
    println!("=== lasso for the (1,3) exclusion ===");
    let mut mem: Memory<TmWord> = Memory::new();
    let (c, r) = AgpTm::alloc(&mut mem, 3, 1);
    let procs = (0..3)
        .map(|i| AgpTm::new(c, r, ProcessId::new(i), 3, 1))
        .collect();
    let mut sys: System<TmWord, AgpTm> = System::new(mem, procs);
    let mut adv =
        TripleRoundAdversary::new([ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
    let witness = run_until_cycle_keyed(&mut sys, &mut adv, 5000, |sys, adv| {
        (normalized_agp(sys), adv.normalized_state())
    })
    .expect("the all-abort loop is periodic");
    println!("cycle length  : {} events", witness.cycle.len());
    println!("cycle steppers: {:?}", witness.cycle_steppers());
    println!(
        "commits inside: {}",
        witness.cycle_has_good_response(|resp| resp.is_commit())
    );
    println!(
        "⇒ an infinite fair execution with 3 steppers and no commit:\n  \
         (1,3)-freedom excludes S. Together with the (2,2) exclusion and the\n  \
         (1,2) implementation, S has no weakest excluding (l,k)-freedom property."
    );
    let _ = Value::new(0);
}
