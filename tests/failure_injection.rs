//! Failure injection: safety must survive arbitrary crash patterns
//! (Section 2's model allows any number of crashes), and the non-blocking
//! liveness structure must show through.

use safety_liveness_exclusion::consensus::{grouped_kset, ConsWord, ObstructionFreeConsensus};
use safety_liveness_exclusion::history::{Operation, ProcessId, Value, VarId};
use safety_liveness_exclusion::memory::{
    CrashPlan, FairRandom, Memory, RandomCrashes, RepeatTxn, RoundRobin, System, WorkloadScheduler,
};
use safety_liveness_exclusion::safety::{
    certify_unique_writes, ConsensusSafety, KSetAgreementSafety, SafetyProperty,
};
use safety_liveness_exclusion::tm::{AgpTm, GlobalVersionTm, TmWord};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn of_consensus_safe_under_random_crashes() {
    for seed in 0..20 {
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 3, 64);
        let procs = (0..3)
            .map(|i| ObstructionFreeConsensus::new(layout.clone(), p(i), 3))
            .collect();
        let mut sys: System<ConsWord, ObstructionFreeConsensus> = System::new(mem, procs);
        for i in 0..3 {
            sys.invoke(p(i), Operation::Propose(Value::new(i as i64)))
                .unwrap();
        }
        let mut sched = RandomCrashes::new(FairRandom::new(seed), seed, 20, 1);
        sys.run(&mut sched, 50_000);
        assert!(
            ConsensusSafety::new().allows(sys.history()),
            "seed {seed}: {}",
            sys.history()
        );
        // Survivors decide under a fair schedule of this length.
        for i in 0..3 {
            if !sys.is_crashed(p(i)) {
                assert!(
                    !sys.history().pending(p(i)),
                    "seed {seed}: survivor {i} stuck"
                );
            }
        }
    }
}

#[test]
fn of_consensus_tolerates_planned_mid_round_crashes() {
    // Crash each process at a different point in its commit-adopt round;
    // the remaining one must still decide and agree with any prior
    // decision.
    for crash_at in [1u64, 3, 5, 9, 15] {
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 64);
        let procs = (0..2)
            .map(|i| ObstructionFreeConsensus::new(layout.clone(), p(i), 2))
            .collect();
        let mut sys: System<ConsWord, ObstructionFreeConsensus> = System::new(mem, procs);
        sys.invoke(p(0), Operation::Propose(Value::new(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(Value::new(2))).unwrap();
        let mut sched = CrashPlan::new(RoundRobin::new(), vec![(crash_at, p(0))]);
        sys.run(&mut sched, 50_000);
        assert!(
            ConsensusSafety::new().allows(sys.history()),
            "crash_at {crash_at}"
        );
        assert!(
            !sys.history().pending(p(1)),
            "crash_at {crash_at}: survivor did not decide"
        );
    }
}

#[test]
fn kset_safe_under_random_crashes() {
    for seed in 0..10 {
        let mut mem: Memory<ConsWord> = Memory::new();
        let procs = grouped_kset(&mut mem, 4, 2, 64);
        let mut sys: System<ConsWord, ObstructionFreeConsensus> = System::new(mem, procs);
        for i in 0..4 {
            sys.invoke(p(i), Operation::Propose(Value::new(i as i64)))
                .unwrap();
        }
        let mut sched = RandomCrashes::new(FairRandom::new(seed), seed ^ 0xABCD, 15, 1);
        sys.run(&mut sched, 50_000);
        assert!(
            KSetAgreementSafety::new(2).allows(sys.history()),
            "seed {seed}"
        );
    }
}

#[test]
fn tms_stay_safe_under_random_crashes() {
    let x = VarId::new(0);
    for seed in 0..10 {
        // GlobalVersionTm.
        let mut mem: Memory<TmWord> = Memory::new();
        let c = GlobalVersionTm::alloc(&mut mem, 1);
        let procs = (0..3).map(|_| GlobalVersionTm::new(c, 1)).collect();
        let mut sys: System<TmWord, GlobalVersionTm> = System::new(mem, procs);
        let workload = RepeatTxn::new(3, vec![x], vec![x], None);
        let inner = WorkloadScheduler::new(3, workload, FairRandom::new(seed));
        let mut sched = RandomCrashes::new(inner, seed, 10, 1);
        sys.run(&mut sched, 2000);
        assert!(
            certify_unique_writes(sys.history(), Value::new(0)),
            "gv seed {seed}"
        );
        assert!(sys.history().is_well_formed(), "gv seed {seed}");

        // AgpTm.
        let mut mem: Memory<TmWord> = Memory::new();
        let (c, r) = AgpTm::alloc(&mut mem, 3, 1);
        let procs = (0..3).map(|i| AgpTm::new(c, r, p(i), 3, 1)).collect();
        let mut sys: System<TmWord, AgpTm> = System::new(mem, procs);
        let workload = RepeatTxn::new(3, vec![x], vec![x], None);
        let inner = WorkloadScheduler::new(3, workload, FairRandom::new(seed));
        let mut sched = RandomCrashes::new(inner, seed, 10, 1);
        sys.run(&mut sched, 2000);
        assert!(
            certify_unique_writes(sys.history(), Value::new(0)),
            "agp seed {seed}"
        );
    }
}

#[test]
fn lock_free_tm_survivor_keeps_committing_after_crashes() {
    // Non-blocking in action: crash two of three processes mid-transaction;
    // the survivor still commits.
    let x = VarId::new(0);
    let mut mem: Memory<TmWord> = Memory::new();
    let c = GlobalVersionTm::alloc(&mut mem, 1);
    let procs = (0..3).map(|_| GlobalVersionTm::new(c, 1)).collect();
    let mut sys: System<TmWord, GlobalVersionTm> = System::new(mem, procs);
    // p1, p2 start transactions then crash.
    for i in 0..2 {
        sys.invoke(p(i), Operation::TxStart).unwrap();
        sys.step(p(i)).unwrap();
        sys.crash(p(i)).unwrap();
    }
    let workload = RepeatTxn::new(3, vec![x], vec![x], Some(5));
    let mut sched = WorkloadScheduler::new(3, workload, FairRandom::restricted(1, vec![p(2)]));
    sys.run(&mut sched, 10_000);
    let commits = sys
        .history()
        .iter()
        .filter(|a| a.as_respond().is_some_and(|r| r.is_commit()))
        .count();
    assert_eq!(commits, 5);
    assert!(certify_unique_writes(sys.history(), Value::new(0)));
}

#[test]
fn blocking_demo_contrast() {
    let demo = safety_liveness_exclusion::blocking::blocking_demo(2000);
    assert!(demo.establishes_contrast(), "{demo:?}");
}
