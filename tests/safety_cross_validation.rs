//! Cross-validation of the safety checkers against each other and against
//! the implementations, over many random schedules.
//!
//! The checkers are related by strict inclusions that the paper relies on
//! (linearizable consensus ⟹ agreement & validity; opacity ⟹ strict
//! serializability; certifier ⟹ exhaustive opacity). These tests hammer
//! real implementation histories through all of them.

use safety_liveness_exclusion::consensus::{CasConsensus, ConsWord, ObstructionFreeConsensus};
use safety_liveness_exclusion::history::{History, Operation, ProcessId, Value, VarId};
use safety_liveness_exclusion::memory::{FairRandom, Memory, RepeatTxn, System, WorkloadScheduler};
use safety_liveness_exclusion::safety::{
    certify_unique_writes, ConsensusSafety, ConsensusSpec, KSetAgreementSafety, Linearizability,
    Opacity, PropertyS, SafetyProperty, StrictSerializability,
};
use safety_liveness_exclusion::tm::{AgpTm, GlobalVersionTm, LockTm, TmWord};

fn consensus_history(seed: u64, n: usize) -> History {
    let mut mem: Memory<ConsWord> = Memory::new();
    let layout = ObstructionFreeConsensus::layout(&mut mem, n, 64);
    let procs = (0..n)
        .map(|i| ObstructionFreeConsensus::new(layout.clone(), ProcessId::new(i), n))
        .collect();
    let mut sys = System::new(mem, procs);
    for i in 0..n {
        sys.invoke(
            ProcessId::new(i),
            Operation::Propose(Value::new(i as i64 * 10)),
        )
        .unwrap();
    }
    sys.run(&mut FairRandom::new(seed), 30_000);
    sys.history().clone()
}

#[test]
fn of_consensus_linearizable_and_safe_across_seeds() {
    let lin = Linearizability::new(ConsensusSpec::new());
    let safety = ConsensusSafety::new();
    let kset = KSetAgreementSafety::new(1);
    for seed in 0..15 {
        let h = consensus_history(seed, 2);
        assert!(
            lin.is_linearizable(&h),
            "seed {seed}: not linearizable\n{h}"
        );
        assert!(safety.allows(&h), "seed {seed}");
        assert_eq!(safety.allows(&h), kset.allows(&h), "seed {seed}");
    }
}

#[test]
fn cas_consensus_linearizable_across_seeds() {
    let lin = Linearizability::new(ConsensusSpec::new());
    for seed in 0..25 {
        let mut mem: Memory<ConsWord> = Memory::new();
        let obj = CasConsensus::alloc(&mut mem);
        let procs = (0..3).map(|_| CasConsensus::new(obj)).collect();
        let mut sys: System<ConsWord, CasConsensus> = System::new(mem, procs);
        for i in 0..3 {
            sys.invoke(ProcessId::new(i), Operation::Propose(Value::new(i as i64)))
                .unwrap();
        }
        sys.run(&mut FairRandom::new(seed), 1000);
        assert!(lin.is_linearizable(sys.history()), "seed {seed}");
    }
}

fn x0() -> VarId {
    VarId::new(0)
}

#[test]
fn opacity_implies_strict_serializability_on_tm_runs() {
    let opacity = Opacity::new(Value::new(0));
    let ssr = StrictSerializability::new(Value::new(0));
    for seed in 0..6 {
        let mut mem: Memory<TmWord> = Memory::new();
        let c = GlobalVersionTm::alloc(&mut mem, 1);
        let procs = (0..2).map(|_| GlobalVersionTm::new(c, 1)).collect();
        let mut sys: System<TmWord, GlobalVersionTm> = System::new(mem, procs);
        let workload = RepeatTxn::new(2, vec![x0()], vec![x0()], None);
        let mut sched = WorkloadScheduler::new(2, workload, FairRandom::new(seed));
        sys.run(&mut sched, 100);
        let h = sys.history();
        assert!(opacity.allows(h), "seed {seed}: not opaque");
        assert!(
            ssr.allows(h),
            "seed {seed}: opaque but not strictly serializable?!"
        );
    }
}

#[test]
fn certifier_sound_wrt_exhaustive_on_all_three_tms() {
    // Wherever the certifier says yes on a short history, the exhaustive
    // checker must agree (soundness direction).
    let opacity = Opacity::new(Value::new(0));
    for seed in 0..4 {
        // GlobalVersionTm.
        let mut mem: Memory<TmWord> = Memory::new();
        let c = GlobalVersionTm::alloc(&mut mem, 1);
        let procs = (0..2).map(|_| GlobalVersionTm::new(c, 1)).collect();
        let mut sys: System<TmWord, GlobalVersionTm> = System::new(mem, procs);
        let workload = RepeatTxn::new(2, vec![x0()], vec![x0()], None);
        let mut sched = WorkloadScheduler::new(2, workload, FairRandom::new(seed));
        sys.run(&mut sched, 90);
        if certify_unique_writes(sys.history(), Value::new(0)) {
            assert!(opacity.allows(sys.history()), "gv seed {seed}");
        }

        // AgpTm.
        let mut mem: Memory<TmWord> = Memory::new();
        let (c, r) = AgpTm::alloc(&mut mem, 2, 1);
        let procs = (0..2)
            .map(|i| AgpTm::new(c, r, ProcessId::new(i), 2, 1))
            .collect();
        let mut sys: System<TmWord, AgpTm> = System::new(mem, procs);
        let workload = RepeatTxn::new(2, vec![x0()], vec![x0()], None);
        let mut sched = WorkloadScheduler::new(2, workload, FairRandom::new(seed));
        sys.run(&mut sched, 90);
        if certify_unique_writes(sys.history(), Value::new(0)) {
            assert!(opacity.allows(sys.history()), "agp seed {seed}");
        }

        // LockTm.
        let mut mem: Memory<TmWord> = Memory::new();
        let (lock, store) = LockTm::alloc(&mut mem, 1);
        let procs = (0..2).map(|_| LockTm::new(lock, store, 1)).collect();
        let mut sys: System<TmWord, LockTm> = System::new(mem, procs);
        let workload = RepeatTxn::new(2, vec![x0()], vec![x0()], None);
        let mut sched = WorkloadScheduler::new(2, workload, FairRandom::new(seed));
        sys.run(&mut sched, 90);
        if certify_unique_writes(sys.history(), Value::new(0)) {
            assert!(opacity.allows(sys.history()), "lock seed {seed}");
        }
    }
}

#[test]
fn agp_satisfies_property_s_where_global_version_does_not() {
    // AgpTm implements S; GlobalVersionTm implements opacity but violates
    // S's abort rule under the synchronized-triple schedule. This is the
    // separation that makes Section 5.3's counterexample non-vacuous.
    use safety_liveness_exclusion::adversary::TripleRoundAdversary;

    let s = PropertyS::new(Value::new(0));

    let mut mem: Memory<TmWord> = Memory::new();
    let (c, r) = AgpTm::alloc(&mut mem, 3, 1);
    let procs = (0..3)
        .map(|i| AgpTm::new(c, r, ProcessId::new(i), 3, 1))
        .collect();
    let mut sys: System<TmWord, AgpTm> = System::new(mem, procs);
    let mut adv =
        TripleRoundAdversary::new([ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
    sys.run(&mut adv, 500);
    assert!(s.abort_rule_holds(sys.history()));

    let mut mem: Memory<TmWord> = Memory::new();
    let c = GlobalVersionTm::alloc(&mut mem, 1);
    let procs = (0..3).map(|_| GlobalVersionTm::new(c, 1)).collect();
    let mut sys: System<TmWord, GlobalVersionTm> = System::new(mem, procs);
    let mut adv =
        TripleRoundAdversary::new([ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
    sys.run(&mut adv, 500);
    assert!(!s.abort_rule_holds(sys.history()));
}

#[test]
fn lock_tm_runs_are_opaque_but_blocking() {
    let opacity = Opacity::new(Value::new(0));
    let mut mem: Memory<TmWord> = Memory::new();
    let (lock, store) = LockTm::alloc(&mut mem, 1);
    let procs = (0..2).map(|_| LockTm::new(lock, store, 1)).collect();
    let mut sys: System<TmWord, LockTm> = System::new(mem, procs);

    // Crash the holder; the other spins forever — yet every *history*
    // remains opaque (blocking is a liveness failure, not a safety one).
    sys.invoke(ProcessId::new(0), Operation::TxStart).unwrap();
    sys.step(ProcessId::new(0)).unwrap();
    sys.crash(ProcessId::new(0)).unwrap();
    sys.invoke(ProcessId::new(1), Operation::TxStart).unwrap();
    for _ in 0..50 {
        sys.step(ProcessId::new(1)).unwrap();
    }
    assert!(opacity.allows(sys.history()));
    assert!(sys.history().pending(ProcessId::new(1)));
}
