//! The hardware object types (Section 2's base-object menagerie) as shared
//! objects: linearizability of the one-primitive implementations, checked
//! per schedule and exhaustively at small scope.

use safety_liveness_exclusion::explorer::explore_safety;
use safety_liveness_exclusion::history::{Operation, ProcessId, Value};
use safety_liveness_exclusion::memory::{
    AtomicKind, AtomicObjectProcess, FairRandom, Memory, System,
};
use safety_liveness_exclusion::safety::{CasSpec, CounterSpec, Linearizability, TasSpec};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn system(kind: AtomicKind, n: usize) -> System<i64, AtomicObjectProcess> {
    let mut mem: Memory<i64> = Memory::new();
    let obj = match kind {
        AtomicKind::Tas => mem.alloc_tas(),
        AtomicKind::Cas => mem.alloc_cas(0),
        AtomicKind::Counter => mem.alloc_counter(0),
    };
    let procs = (0..n)
        .map(|_| AtomicObjectProcess::new(kind, obj))
        .collect();
    System::new(mem, procs)
}

#[test]
fn tas_histories_linearizable_across_seeds() {
    let lin = Linearizability::new(TasSpec::new());
    for seed in 0..20 {
        let mut sys = system(AtomicKind::Tas, 3);
        for i in 0..3 {
            sys.invoke(p(i), Operation::TestAndSet).unwrap();
        }
        sys.run(&mut FairRandom::new(seed), 100);
        assert!(lin.is_linearizable(sys.history()), "seed {seed}");
    }
}

#[test]
fn tas_exhaustive_all_schedules() {
    let mut sys = system(AtomicKind::Tas, 3);
    for i in 0..3 {
        sys.invoke(p(i), Operation::TestAndSet).unwrap();
    }
    let lin = Linearizability::new(TasSpec::new());
    let out = explore_safety(&sys, &[p(0), p(1), p(2)], 6, &lin, |h| {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut hasher = DefaultHasher::new();
        for a in h.iter() {
            a.hash(&mut hasher);
        }
        hasher.finish()
    });
    assert!(out.holds(), "violations: {:?}", out.violations);
    assert!(!out.truncated, "3 one-step processes finish within depth 6");
}

#[test]
fn cas_histories_linearizable_across_seeds() {
    let lin = Linearizability::new(CasSpec::new(Value::new(0)));
    for seed in 0..20 {
        let mut sys = system(AtomicKind::Cas, 3);
        for i in 0..3 {
            sys.invoke(
                p(i),
                Operation::CompareAndSwap {
                    expected: Value::new(0),
                    new: Value::new(i as i64 + 1),
                },
            )
            .unwrap();
        }
        sys.run(&mut FairRandom::new(seed), 100);
        assert!(lin.is_linearizable(sys.history()), "seed {seed}");
    }
}

#[test]
fn counter_histories_linearizable_across_seeds() {
    let lin = Linearizability::new(CounterSpec::new(Value::new(0)));
    for seed in 0..20 {
        let mut sys = system(AtomicKind::Counter, 3);
        for i in 0..3 {
            sys.invoke(p(i), Operation::FetchAdd(Value::new(1)))
                .unwrap();
        }
        sys.run(&mut FairRandom::new(seed), 100);
        assert!(lin.is_linearizable(sys.history()), "seed {seed}");
    }
}

#[test]
fn corrupted_tas_history_rejected() {
    // Sanity that the checker has teeth: two winners is impossible.
    use safety_liveness_exclusion::history::{Action, History, Response};
    let h = History::from_actions([
        Action::invoke(p(0), Operation::TestAndSet),
        Action::invoke(p(1), Operation::TestAndSet),
        Action::respond(p(0), Response::Flag(false)),
        Action::respond(p(1), Response::Flag(false)),
    ]);
    let lin = Linearizability::new(TasSpec::new());
    assert!(!lin.is_linearizable(&h));
}
