//! End-to-end integration: the paper's headline results, regenerated
//! through the public API of the root crate.

use safety_liveness_exclusion::counterexample::run_counterexample_s;
use safety_liveness_exclusion::grid::{consensus_grid, tm_grid};
use safety_liveness_exclusion::liveness::LkFreedom;
use safety_liveness_exclusion::sect6::{nx_report, s_freedom_report};
use safety_liveness_exclusion::theorems::{consensus_gmax_demo, tm_gmax_demo};

#[test]
fn theorem_5_2_figure_1a() {
    for n in [2, 3, 5] {
        let g = consensus_grid(n);
        for p in &g.points {
            assert_eq!(
                p.implementable(),
                p.lk == LkFreedom::new(1, 1),
                "n={n}: wrong verdict at {}",
                p.lk
            );
        }
        assert_eq!(
            g.strongest_implementable()
                .iter()
                .map(|p| p.lk)
                .collect::<Vec<_>>(),
            vec![LkFreedom::new(1, 1)]
        );
        if n >= 2 {
            assert_eq!(
                g.weakest_excluded()
                    .iter()
                    .map(|p| p.lk)
                    .collect::<Vec<_>>(),
                vec![LkFreedom::new(1, 2)]
            );
        }
    }
}

#[test]
fn theorem_5_3_figure_1b() {
    for n in [2, 3, 5] {
        let g = tm_grid(n);
        for p in &g.points {
            assert_eq!(p.implementable(), p.lk.l() == 1, "n={n}: {}", p.lk);
        }
        assert_eq!(
            g.strongest_implementable()
                .iter()
                .map(|p| p.lk)
                .collect::<Vec<_>>(),
            vec![LkFreedom::new(1, n)]
        );
        if n >= 2 {
            assert_eq!(
                g.weakest_excluded()
                    .iter()
                    .map(|p| p.lk)
                    .collect::<Vec<_>>(),
                vec![LkFreedom::new(2, 2)]
            );
        }
    }
}

#[test]
fn corollaries_4_5_and_4_6() {
    assert!(consensus_gmax_demo().establishes_corollary());
    assert!(tm_gmax_demo(600).establishes_corollary());
}

#[test]
fn section_5_3_counterexample() {
    assert!(run_counterexample_s(3000).establishes_section_5_3());
}

#[test]
fn section_6_structures() {
    let s = s_freedom_report(5);
    assert!(s.pairwise_incomparable);
    assert_eq!(s.singletons.len(), 5);
    let nx = nx_report(5);
    assert!(nx.totally_ordered);
    assert_eq!(nx.strongest_implementable.x(), 0);
    assert_eq!(nx.weakest_non_implementable.x(), 1);
}

#[test]
fn tm_frontier_points_are_incomparable() {
    // Theorem 5.3's remark: strongest implementable (1,n) and weakest
    // excluded (2,2) are incomparable for n > 2.
    for n in [3, 4, 6] {
        let a = LkFreedom::new(1, n);
        let b = LkFreedom::new(2, 2);
        assert!(a.partial_cmp_strength(&b).is_none(), "n={n}");
    }
    // At n = 2 they are comparable ((1,2) < (2,2)).
    assert!(LkFreedom::new(2, 2).is_stronger_or_equal(&LkFreedom::new(1, 2)));
}
