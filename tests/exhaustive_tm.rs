//! Exhaustive small-scope verification of the TM implementations: every
//! schedule of two processes running one transaction each, checked against
//! full (per-prefix) opacity.
//!
//! This is the TM counterpart of the consensus exploration that backs
//! Figure 1a's white point: universal quantification over schedules,
//! discharged by enumeration.

use safety_liveness_exclusion::explorer::explore_safety;
use safety_liveness_exclusion::history::{Operation, ProcessId, Value, VarId};
use safety_liveness_exclusion::memory::{Memory, System};
use safety_liveness_exclusion::safety::Opacity;
use safety_liveness_exclusion::tm::{AgpTm, GlobalVersionTm, TmWord};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn digest(h: &safety_liveness_exclusion::history::History) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut hasher = DefaultHasher::new();
    for a in h.iter() {
        a.hash(&mut hasher);
    }
    hasher.finish()
}

/// Drives one whole scripted transaction per process, but through the
/// *system* invocation interface ahead of time is impossible (one pending
/// op per process), so the script advances between explorations: instead
/// we explore all interleavings of the final, most contended phase — both
/// processes having started at the same version, both writing, both
/// committing.
#[test]
fn global_version_tm_opaque_under_all_commit_races() {
    let mut mem: Memory<TmWord> = Memory::new();
    let c = GlobalVersionTm::alloc(&mut mem, 1);
    let procs = (0..2).map(|_| GlobalVersionTm::new(c, 1)).collect();
    let mut sys: System<TmWord, GlobalVersionTm> = System::new(mem, procs);
    // Deterministic prefix: both start at version 1, write locally.
    for i in 0..2 {
        sys.invoke(p(i), Operation::TxStart).unwrap();
        sys.step(p(i)).unwrap();
        sys.invoke(
            p(i),
            Operation::TxWrite(VarId::new(0), Value::new(10 + i as i64)),
        )
        .unwrap();
        sys.step(p(i)).unwrap();
    }
    // Now both commit; explore every interleaving of the commit phase.
    for i in 0..2 {
        sys.invoke(p(i), Operation::TxCommit).unwrap();
    }
    let out = explore_safety(&sys, &[p(0), p(1)], 8, &Opacity::new(Value::new(0)), digest);
    assert!(out.holds(), "violations: {:?}", out.violations);
    assert!(!out.truncated);
}

#[test]
fn agp_tm_opaque_under_all_start_and_commit_races() {
    // Both processes race the whole start (announce + read C) and commit
    // (scan + CAS) phases: 8 steps total, all interleavings explored.
    let mut mem: Memory<TmWord> = Memory::new();
    let (c, r) = AgpTm::alloc(&mut mem, 2, 1);
    let procs = (0..2).map(|i| AgpTm::new(c, r, p(i), 2, 1)).collect();
    let mut sys: System<TmWord, AgpTm> = System::new(mem, procs);
    for i in 0..2 {
        sys.invoke(p(i), Operation::TxStart).unwrap();
    }
    // Explore the start race fully, then from each outcome the commit race
    // — explore_safety handles both by just exploring deeply enough, but
    // invocations must be injected when a process completes its start. We
    // instead check the start race alone here (the commit race is covered
    // by the test above and the AgpTm unit tests).
    let out = explore_safety(&sys, &[p(0), p(1)], 6, &Opacity::new(Value::new(0)), digest);
    assert!(out.holds(), "violations: {:?}", out.violations);
    assert!(!out.truncated);
}

#[test]
fn agp_tm_commit_race_after_symmetric_start() {
    let mut mem: Memory<TmWord> = Memory::new();
    let (c, r) = AgpTm::alloc(&mut mem, 2, 1);
    let procs = (0..2).map(|i| AgpTm::new(c, r, p(i), 2, 1)).collect();
    let mut sys: System<TmWord, AgpTm> = System::new(mem, procs);
    // Symmetric start: both announce, then both read C.
    for i in 0..2 {
        sys.invoke(p(i), Operation::TxStart).unwrap();
    }
    for i in 0..2 {
        sys.step(p(i)).unwrap();
    }
    for i in 0..2 {
        sys.step(p(i)).unwrap();
    }
    for i in 0..2 {
        sys.invoke(
            p(i),
            Operation::TxWrite(VarId::new(0), Value::new(20 + i as i64)),
        )
        .unwrap();
        sys.step(p(i)).unwrap();
        sys.invoke(p(i), Operation::TxCommit).unwrap();
    }
    let out = explore_safety(&sys, &[p(0), p(1)], 8, &Opacity::new(Value::new(0)), digest);
    assert!(out.holds(), "violations: {:?}", out.violations);
    assert!(!out.truncated);
    // In every interleaving at most one of the two CASes succeeds — i.e.
    // never two commits. Check on a canonical run: step p1 fully, then p2.
    let mut sys2 = sys.clone();
    while sys2.is_pending(p(0)) {
        sys2.step(p(0)).unwrap();
    }
    while sys2.is_pending(p(1)) {
        sys2.step(p(1)).unwrap();
    }
    let commits = sys2
        .history()
        .iter()
        .filter(|a| a.as_respond().is_some_and(|resp| resp.is_commit()))
        .count();
    assert_eq!(commits, 1);
}
