pub use slx_core::*;
